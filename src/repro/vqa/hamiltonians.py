"""Pauli-sum Hamiltonians for variational workloads.

A :class:`PauliSum` is a weighted sum of Pauli strings; expectations are
evaluated over whole state *blocks* at once (the batched observable path),
so one energy evaluation over a parameter batch is a single pass over the
simulator outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..circuit.measure import pauli_expectation
from ..errors import SimulationError

_VALID = frozenset("IXYZ")


@dataclass(frozen=True)
class PauliSum:
    """``sum_k coefficients[k] * Pauli(strings[k])`` on ``num_qubits``.

    String position 0 acts on qubit ``n-1`` (bitstring convention).
    """

    num_qubits: int
    strings: tuple[str, ...]
    coefficients: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.strings) != len(self.coefficients):
            raise SimulationError("strings/coefficients length mismatch")
        for s in self.strings:
            if len(s) != self.num_qubits or set(s) - _VALID:
                raise SimulationError(f"bad Pauli string {s!r}")

    def __len__(self) -> int:
        return len(self.strings)

    def expectation(self, states: np.ndarray) -> np.ndarray:
        """Per-column expectation values over a ``(2^n, batch)`` block."""
        total = np.zeros(states.shape[1] if states.ndim > 1 else 1)
        for coeff, string in zip(self.coefficients, self.strings):
            total = total + coeff * pauli_expectation(states, string)
        return total

    def to_dense(self) -> np.ndarray:
        """Dense matrix (validation only; exponential in ``n``)."""
        paulis = {
            "I": np.eye(2), "X": np.array([[0, 1], [1, 0]]),
            "Y": np.array([[0, -1j], [1j, 0]]), "Z": np.diag([1, -1]),
        }
        dim = 1 << self.num_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        for coeff, string in zip(self.coefficients, self.strings):
            term = np.eye(1)
            for ch in string:
                term = np.kron(term, paulis[ch])
            out += coeff * term
        return out

    def ground_energy(self) -> float:
        """Exact minimum eigenvalue (small ``n`` validation)."""
        if self.num_qubits > 10:
            raise SimulationError("exact diagonalization limited to 10 qubits")
        return float(np.linalg.eigvalsh(self.to_dense())[0])


def _string(num_qubits: int, ops: dict[int, str]) -> str:
    """Pauli string with ``ops[qubit] = 'X'|'Y'|'Z'`` (position 0 = qubit n-1)."""
    chars = ["I"] * num_qubits
    for qubit, op in ops.items():
        chars[num_qubits - 1 - qubit] = op
    return "".join(chars)


def transverse_field_ising(
    num_qubits: int, j: float = 1.0, h: float = 1.0, periodic: bool = False
) -> PauliSum:
    """``-J sum Z_i Z_{i+1} - h sum X_i`` (the standard TFIM)."""
    strings: list[str] = []
    coeffs: list[float] = []
    bonds = num_qubits if periodic and num_qubits > 2 else num_qubits - 1
    for i in range(bonds):
        strings.append(_string(num_qubits, {i: "Z", (i + 1) % num_qubits: "Z"}))
        coeffs.append(-j)
    for i in range(num_qubits):
        strings.append(_string(num_qubits, {i: "X"}))
        coeffs.append(-h)
    return PauliSum(num_qubits, tuple(strings), tuple(coeffs))


def heisenberg_xxz(
    num_qubits: int, jxy: float = 1.0, jz: float = 1.0
) -> PauliSum:
    """Open-chain XXZ model: ``sum Jxy (X X + Y Y) + Jz Z Z``."""
    strings: list[str] = []
    coeffs: list[float] = []
    for i in range(num_qubits - 1):
        for op, coeff in (("X", jxy), ("Y", jxy), ("Z", jz)):
            strings.append(_string(num_qubits, {i: op, i + 1: op}))
            coeffs.append(coeff)
    return PauliSum(num_qubits, tuple(strings), tuple(coeffs))


def maxcut(edges: Iterable[tuple[int, int]], num_qubits: int) -> PauliSum:
    """MaxCut cost Hamiltonian ``sum_(i,j) (Z_i Z_j - 1) / 2`` (minimum =
    minus the max cut)."""
    strings: list[str] = []
    coeffs: list[float] = []
    count = 0
    for a, b in edges:
        if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
            raise SimulationError(f"bad edge ({a}, {b})")
        strings.append(_string(num_qubits, {a: "Z", b: "Z"}))
        coeffs.append(0.5)
        count += 1
    strings.append("I" * num_qubits)
    coeffs.append(-0.5 * count)
    return PauliSum(num_qubits, tuple(strings), tuple(coeffs))
