"""Per-tenant admission control: token buckets and tenant weights.

The gateway serves many tenants through one shard fleet, so admission
fairness has two halves:

* **rate** — each tenant draws from its own :class:`TokenBucket`
  (``rate`` jobs/second refill, ``burst`` capacity).  An empty bucket
  refuses the submit with :class:`~repro.errors.RetryLater` carrying the
  exact ``retry_after_s`` until one token refills, so a well-behaved
  client backs off instead of spinning;
* **weight** — a tenant's configured weight becomes a priority *offset*
  added to every job it submits, feeding straight into the existing
  weighted-fair scheduler (aging still guarantees eventual service for
  weight-0 tenants).

Buckets refill continuously (no timer thread): each acquire first credits
``elapsed * rate`` tokens, capped at ``burst``.  With an injected clock
the whole admission sequence is deterministic, which the quota tests rely
on.
"""

from __future__ import annotations

import threading
import time

from ..errors import GatewayError, RetryLater

#: tenant name used when a request carries none
DEFAULT_TENANT = "default"


class TokenBucket:
    """A continuously-refilling token bucket (thread-safe).

    Example::

        clock = lambda: t[0]
        t = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()   # empty
        t[0] += 0.5                        # half a second refills one
        assert bucket.try_acquire()
    """

    def __init__(
        self, rate: float, burst: float, clock=time.monotonic
    ) -> None:
        if rate <= 0:
            raise GatewayError("token bucket rate must be > 0")
        if burst < 1:
            raise GatewayError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        with self._lock:
            self._refill(self.clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have refilled (0 when ready)."""
        with self._lock:
            self._refill(self.clock())
            deficit = n - self._tokens
            return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self.clock())
            return self._tokens


class TenantQuotas:
    """Per-tenant buckets plus weight-to-priority mapping.

    ``tenants`` maps tenant name to an overrides dict with any of
    ``rate``, ``burst``, ``weight``; unnamed tenants get the defaults
    lazily on first submit (weight 0).  ``admit`` either debits one token
    or raises :class:`~repro.errors.RetryLater`; ``priority_offset``
    returns the scheduler boost.  Example::

        quotas = TenantQuotas(rate=100.0, burst=10,
                              tenants={"gold": {"weight": 5}})
        quotas.admit("gold")
        assert quotas.priority_offset("gold") == 5
        assert quotas.priority_offset("anon") == 0
    """

    def __init__(
        self,
        rate: float = 100.0,
        burst: float = 20.0,
        tenants: dict[str, dict] | None = None,
        clock=time.monotonic,
    ) -> None:
        self.default_rate = float(rate)
        self.default_burst = float(burst)
        self.clock = clock
        self._lock = threading.Lock()
        self._weights: dict[str, int] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._admitted: dict[str, int] = {}
        self._refused: dict[str, int] = {}
        for name, spec in (tenants or {}).items():
            self._buckets[name] = TokenBucket(
                spec.get("rate", rate), spec.get("burst", burst), clock
            )
            self._weights[name] = int(spec.get("weight", 0))

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.default_rate, self.default_burst, self.clock
                )
            return bucket

    def admit(self, tenant: str = DEFAULT_TENANT) -> None:
        """Debit one token or raise :class:`RetryLater` with the refill
        hint (the gateway maps it to ``QUOTA_EXCEEDED`` on the wire)."""
        bucket = self._bucket(tenant)
        if bucket.try_acquire():
            with self._lock:
                self._admitted[tenant] = self._admitted.get(tenant, 0) + 1
            return
        after = bucket.retry_after()
        with self._lock:
            self._refused[tenant] = self._refused.get(tenant, 0) + 1
        refusal = RetryLater(
            f"tenant {tenant!r} is over its admission rate "
            f"({bucket.rate:g}/s, burst {bucket.burst:g})",
            retry_after_s=after,
        )
        refusal.reason = "quota"
        raise refusal

    def priority_offset(self, tenant: str = DEFAULT_TENANT) -> int:
        """The scheduler priority boost configured for ``tenant`` (0 by
        default)."""
        with self._lock:
            return self._weights.get(tenant, 0)

    def stats(self) -> dict:
        """JSON-safe per-tenant admission accounting."""
        with self._lock:
            tenants = sorted(set(self._buckets) | set(self._weights))
            return {
                tenant: {
                    "weight": self._weights.get(tenant, 0),
                    "admitted": self._admitted.get(tenant, 0),
                    "refused": self._refused.get(tenant, 0),
                }
                for tenant in tenants
            }
