"""Fault-tolerant batch execution: injection, retries, degradation,
checkpoint/resume, and numerical health.

The paper's premise is long-running batch workloads — thousands of inputs
through one compiled task graph — so the runtime must survive transient
kernel/copy failures, memory pressure, corrupt plan archives, and numerical
corruption without losing completed work.  This package supplies:

* :mod:`repro.resilience.faults` — a deterministic, seeded fault-injection
  harness (``REPRO_FAULTS`` / :class:`FaultPlan`) the whole runtime consults;
* :mod:`repro.resilience.retry` — bounded retries with exponential backoff,
  deterministic jitter, and per-run budgets;
* :mod:`repro.resilience.degrade` — the spMM backend fallback ladder
  (csr → numpy → loop);
* :mod:`repro.resilience.checkpoint` — batch-boundary checkpoints and
  typed resume;
* :mod:`repro.resilience.health` — per-batch NaN/norm-drift guard with
  warn/renormalize/fail policies;
* :mod:`repro.resilience.events` — the event log every layer records into,
  surfaced as ``SimulationResult.stats["resilience"]``;
* :mod:`repro.resilience.failover` — shard-death detection and queued-job
  rescue for the gateway's multi-pool router.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointManager,
    find_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from .degrade import BACKEND_CHAIN, BackendLadder, apply_with_recovery
from .events import ResilienceLog, get_resilience_log
from .faults import (
    FAULT_SITES,
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_injection,
    get_fault_injector,
    set_fault_plan,
)
from .failover import RescuedJob, rescue_queued, shard_is_dead
from .health import HEALTH_MODES, HealthPolicy, check_state_block
from .retry import RetryPolicy, RetrySession

__all__ = [
    "apply_with_recovery",
    "BACKEND_CHAIN",
    "BackendLadder",
    "check_state_block",
    "Checkpoint",
    "CheckpointManager",
    "fault_injection",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FAULTS_ENV",
    "FaultSpec",
    "find_checkpoints",
    "get_fault_injector",
    "get_resilience_log",
    "HEALTH_MODES",
    "HealthPolicy",
    "load_checkpoint",
    "rescue_queued",
    "RescuedJob",
    "ResilienceLog",
    "RetryPolicy",
    "RetrySession",
    "save_checkpoint",
    "set_fault_plan",
    "shard_is_dead",
]
