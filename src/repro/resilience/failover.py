"""Shard failover: rescuing queued work off a dead service.

When a :class:`~repro.service.workers.BatchSimulationService` running in
process mode spends its restart budget, its next step would terminal-fail
the queued backlog (``no live pool workers``) — correct for a standalone
service, wasteful for a gateway fleet where sibling shards are healthy.
:func:`rescue_queued` is the policy the shard router applies *before*
that happens: it cancels every still-queued job on the dead shard
(accounted — the lifecycle log shows a clean ``cancelled`` exit, not a
lost job) and returns the respecification each job needs to be
resubmitted elsewhere, with its delivery evidence carried along.

In-flight jobs are deliberately left alone: the service's own
crash-redelivery machinery (PR 8) already owns them — they will be
redelivered, quarantined, or failed by the shard that dispatched them,
and only *then* does the queue rescue pick up whatever was requeued.

Every rescue appends one ``shard_failover`` record to the resilience
event log, so operators can correlate a latency blip with the shard that
died under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import get_resilience_log


def shard_is_dead(service) -> bool:
    """True when ``service`` can never run another mega-batch.

    A process-mode service is dead once its pool has zero live workers
    (the restart budget is spent) and nothing is in flight that could
    still land.  A serial service runs in this very interpreter and is
    never dead.  Pool-less process services (nothing dispatched yet)
    are alive: the pool spawns on first use.
    """
    if service.parallelism != "process":
        return False
    pool = service._pool
    if pool is None:
        return False
    return pool.alive_workers == 0 and not service._inflight


@dataclass
class RescuedJob:
    """Everything needed to resubmit one rescued job on another shard.

    ``batch`` carries the exact input amplitudes (bit-identical replay);
    ``evidence`` is the crash history the job accumulated on its dead
    home shard, so a job that kept killing workers arrives at its new
    shard with its delivery record intact for quarantine accounting.
    """

    job_id: str
    circuit: object
    batch: object
    priority: int = 0
    deadline: float | None = None
    timeout_s: float | None = None
    max_deliveries: int | None = None
    options: tuple = ()
    #: requested fidelity budget — preserved across failover so the job
    #: re-homes into the same fidelity class it was submitted under
    fidelity: float = 1.0
    evidence: list = field(default_factory=list)


def rescue_queued(service, shard: str = "") -> list[RescuedJob]:
    """Cancel every queued job on a dead shard; return their respecs.

    The caller (the gateway's shard router) resubmits each
    :class:`RescuedJob` on a surviving shard.  Jobs already in flight or
    terminal are untouched.  Emits one ``shard_failover`` resilience
    record naming the shard and the rescue count.  Returns ``[]`` when
    nothing was queued — safe to call repeatedly.
    """
    rescued: list[RescuedJob] = []
    for job in list(service.queue.jobs()):
        service.queue.cancel(job.job_id)
        rescued.append(
            RescuedJob(
                job_id=job.job_id,
                circuit=job.circuit,
                batch=job.batch,
                priority=job.priority,
                deadline=job.deadline,
                timeout_s=job.timeout_s,
                max_deliveries=job.max_deliveries,
                options=job.options,
                fidelity=job.fidelity,
                evidence=list(job.evidence),
            )
        )
    if rescued:
        get_resilience_log().record(
            "shard_failover",
            site="gateway",
            shard=shard,
            rescued=len(rescued),
            jobs=[r.job_id for r in rescued],
        )
    return rescued
