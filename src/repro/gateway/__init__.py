"""Async network gateway: sharded multi-pool serving over TCP.

The gateway is the network front door of the serving stack.  It speaks a
newline-delimited JSON protocol (:mod:`repro.gateway.protocol`) over
plain TCP and fronts a :class:`~repro.gateway.router.ShardRouter` — a
fleet of :class:`~repro.service.workers.BatchSimulationService` shards,
each owning its own worker pool and plan cache.  Jobs route to shards by
consistent hashing on their plan fingerprint, so circuits that would
coalesce also co-locate and keep one shard's plan cache hot instead of
warming every cache a little.

Layers, bottom up:

* :mod:`repro.gateway.protocol` — the versioned wire envelope, typed
  error codes, size limits, and the base64 codec that ships complex128
  amplitude matrices bit-exactly;
* :mod:`repro.gateway.quotas` — per-tenant token buckets and tenant
  weights (fair admission on top of the weighted-fair scheduler);
* :mod:`repro.gateway.router` — consistent-hash shard placement,
  cross-shard failover (rescuing queued work off a shard whose pool
  died), and the merged SLO/metrics/lifecycle view;
* :mod:`repro.gateway.server` — the asyncio TCP server with a pump
  thread driving the synchronous shards, live lifecycle streaming, and
  graceful drain;
* :mod:`repro.gateway.client` — :class:`AsyncGatewayClient` plus the
  blocking :class:`GatewayClient` wrapper.
"""

from .client import AsyncGatewayClient, GatewayClient
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
)
from .quotas import TenantQuotas, TokenBucket
from .router import HashRing, ShardRouter
from .server import GatewayServer

__all__ = [
    "AsyncGatewayClient",
    "decode_array",
    "decode_frame",
    "encode_array",
    "encode_frame",
    "GatewayClient",
    "GatewayServer",
    "HashRing",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ShardRouter",
    "TenantQuotas",
    "TokenBucket",
]
