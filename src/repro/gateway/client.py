"""Gateway clients: asyncio-native plus a blocking wrapper.

:class:`AsyncGatewayClient` is the canonical protocol implementation —
one TCP connection, sequential request/response frames, typed
:class:`~repro.gateway.protocol.ProtocolError` re-raised client-side
with the server's error code intact.  :class:`GatewayClient` wraps it
for synchronous code (the CLI, benchmarks): it runs a private event
loop on a background thread and proxies every call through it, so the
two classes can never drift apart protocol-wise.

Submitting with explicit ``inputs`` (a complex ``(2**n, k)`` matrix)
round-trips the amplitudes bit-exactly via the base64 codec; submitting
with ``num_inputs`` lets the home shard generate its default seeded
batch server-side.  Example::

    client = GatewayClient("127.0.0.1", 7421)
    job = client.submit(family="ghz", num_qubits=4, inputs=states)
    amplitudes = client.result(job)        # exact complex128 matrix
    client.close()
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np

from ..circuit import Circuit
from ..errors import GatewayError
from .protocol import (
    PROTOCOL_VERSION,
    MAX_LINE_BYTES,
    ProtocolError,
    circuit_to_wire,
    decode_array,
    encode_array,
    encode_frame,
)

import json


class AsyncGatewayClient:
    """One NDJSON protocol connection (asyncio).

    Use as an async context manager or call :meth:`connect` /
    :meth:`close` explicitly.  Requests carry monotonically increasing
    ids; responses are matched strictly in order (the protocol is
    sequential per connection, except a ``stream`` which takes the
    connection over).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0
        self._lock = asyncio.Lock()

    async def connect(self) -> "AsyncGatewayClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES + 2
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncGatewayClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- plumbing ------------------------------------------------------------

    async def _call(self, op: str, **payload) -> dict:
        """One request/response round trip; raises typed errors."""
        if self._writer is None:
            raise GatewayError("client is not connected")
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            frame = {
                "v": PROTOCOL_VERSION,
                "op": op,
                "id": request_id,
                **payload,
            }
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise GatewayError(
                f"connection closed by gateway during {op!r}"
            )
        response = json.loads(line)
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise ProtocolError(
            error.get("code", "INTERNAL"),
            error.get("message", "gateway refused the request"),
            **{
                key: value
                for key, value in error.items()
                if key not in ("code", "message")
            },
        )

    @staticmethod
    def _circuit_wire(
        circuit: Circuit | None,
        qasm: str | None,
        family: str | None,
        num_qubits: int | None,
        seed: int,
    ) -> dict:
        given = sum(x is not None for x in (circuit, qasm, family))
        if given != 1:
            raise GatewayError(
                "specify exactly one of circuit=, qasm=, family="
            )
        if circuit is not None:
            return circuit_to_wire(circuit)
        if qasm is not None:
            return {"qasm": qasm}
        if num_qubits is None:
            raise GatewayError("family= also needs num_qubits=")
        return {"family": family, "num_qubits": num_qubits, "seed": seed}

    # -- ops -----------------------------------------------------------------

    async def ping(self) -> bool:
        return bool((await self._call("ping")).get("pong"))

    async def submit(
        self,
        circuit: Circuit | None = None,
        *,
        qasm: str | None = None,
        family: str | None = None,
        num_qubits: int | None = None,
        seed: int = 0,
        inputs: np.ndarray | None = None,
        num_inputs: int = 1,
        tenant: str = "default",
        priority: int = 0,
        deadline_s: float | None = None,
        timeout_s: float | None = None,
        options: tuple = (),
        fidelity: float = 1.0,
    ) -> str:
        """Submit one job; returns its (shard-prefixed) job id.

        ``fidelity`` is the end-to-end fidelity budget in ``(0, 1]``;
        1.0 (the default) requests the exact tier, anything lower opts
        into fidelity-budgeted approximation (see docs/approximation.md).
        """
        payload: dict = {
            "circuit": self._circuit_wire(
                circuit, qasm, family, num_qubits, seed
            ),
            "tenant": tenant,
            "priority": priority,
            "options": list(options),
        }
        if inputs is not None:
            payload["inputs"] = encode_array(np.asarray(inputs))
        else:
            payload["num_inputs"] = num_inputs
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if fidelity != 1.0:
            payload["fidelity"] = float(fidelity)
        return (await self._call("submit", **payload))["job"]

    async def status(self, job_id: str) -> dict:
        return (await self._call("status", job=job_id))["job"]

    async def result(
        self, job_id: str, wait: bool = True, timeout_s: float = 60.0
    ) -> np.ndarray:
        """The job's exact complex128 output matrix (waits by default).

        A failed/quarantined/cancelled job raises
        :class:`ProtocolError` with code ``JOB_FAILED`` carrying the
        terminal status and evidence.
        """
        response = await self._call(
            "result", job=job_id, wait=wait, timeout_s=timeout_s
        )
        wire = response.get("result")
        if wire is None:
            raise GatewayError(
                f"job {job_id} is {response.get('status')} "
                "(no result yet; use wait=True)"
            )
        return decode_array(wire)

    async def cancel(self, job_id: str) -> dict:
        return await self._call("cancel", job=job_id)

    async def metrics(self) -> str:
        """A Prometheus text scrape of the gateway process."""
        return (await self._call("metrics"))["text"]

    async def stats(self) -> dict:
        return (await self._call("stats"))["stats"]

    async def stream(self, from_seq: int | None = None):
        """Async iterator over live lifecycle events.

        Takes the connection over (the protocol's stream mode); open a
        dedicated client for streaming.  ``from_seq=0`` replays every
        event the server has recorded.
        """
        payload = {} if from_seq is None else {"from_seq": from_seq}
        await self._call("stream", **payload)
        while True:
            line = await self._reader.readline()
            if not line:
                return
            frame = json.loads(line)
            if frame.get("stream"):
                yield frame


class GatewayClient:
    """Blocking facade over :class:`AsyncGatewayClient`.

    Owns a private event loop on a daemon thread; every method proxies
    the async client's coroutine of the same name and signature.  Safe
    to call from any thread (calls serialize through the loop).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._async = AsyncGatewayClient(host, port)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="gateway-client",
            daemon=True,
        )
        self._thread.start()
        self._run(self._async.connect())

    def _run(self, coroutine):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._run(self._async.close())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def ping(self) -> bool:
        return self._run(self._async.ping())

    def submit(self, circuit=None, **kwargs) -> str:
        return self._run(self._async.submit(circuit, **kwargs))

    def status(self, job_id: str) -> dict:
        return self._run(self._async.status(job_id))

    def result(
        self, job_id: str, wait: bool = True, timeout_s: float = 60.0
    ) -> np.ndarray:
        return self._run(
            self._async.result(job_id, wait=wait, timeout_s=timeout_s)
        )

    def cancel(self, job_id: str) -> dict:
        return self._run(self._async.cancel(job_id))

    def metrics(self) -> str:
        return self._run(self._async.metrics())

    def stats(self) -> dict:
        return self._run(self._async.stats())

    def stream_events(
        self, from_seq: int = 0, limit: int | None = None,
        timeout_s: float = 10.0,
    ) -> list[dict]:
        """Collect up to ``limit`` stream events (blocking convenience).

        Consumes the connection's stream mode; the client cannot issue
        further requests afterwards — use a dedicated client.
        """

        async def _collect():
            events = []
            iterator = self._async.stream(from_seq=from_seq)
            while limit is None or len(events) < limit:
                try:
                    event = await asyncio.wait_for(
                        iterator.__anext__(), timeout=timeout_s
                    )
                except (StopAsyncIteration, asyncio.TimeoutError):
                    break
                events.append(event)
            return events

        return self._run(_collect())
