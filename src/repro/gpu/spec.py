"""Hardware specifications and analytic cost models for the virtual devices.

No physical GPU exists in this environment, so the paper's RTX A6000 testbed
is replaced by an analytic device model (see DESIGN.md).  The constants below
were *calibrated against the paper's own measurements*:

* ELL spMM kernels are memory-bound: ``(width + 1)`` state-block sweeps at
  768 GB/s reproduces BQSim's QNN n=17 runtime (24.2 s for 200x256 inputs)
  within a few percent.
* Dense batched applies (cuQuantum) stream the state block twice per gate
  (in-register butterfly), which reproduces cuQuantum's 246 s on the same
  workload.
* Qiskit Aer's per-input host overhead fits ``6.9 ms + 0.195 us * 2^n``
  across all 16 circuits of Table 2 (R^2 ~ 0.99) — per-run setup dominates
  its runtime, not kernels.
* FlatDD's CPU DD walk sustains ~130 MMAC/s machine-wide on its own plans
  (the per-circuit rates implied by Table 2 span 42-224 MMAC/s; the midpoint
  reproduces the paper's 331x average speed-up headline).

Every model returns seconds from pure arithmetic — deterministic, platform
independent, and cheap enough to evaluate at the paper's full scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

COMPLEX_BYTES = 16  # complex128 amplitudes


@dataclass(frozen=True)
class GpuSpec:
    """Virtual CUDA device (calibrated to an RTX A6000-class card)."""

    name: str = "virtual-a6000"
    mac_rate: float = 7.5e10  # complex fp64 MAC/s
    mem_bandwidth: float = 768e9  # B/s device memory
    pcie_bandwidth: float = 25e9  # B/s per copy direction
    kernel_launch_overhead: float = 5e-6  # s per kernel (stream mode)
    graph_node_overhead: float = 0.4e-6  # s per task inside a CUDA graph
    graph_launch_overhead: float = 30e-6  # s per graph launch
    copy_latency: float = 8e-6  # s fixed per memcpy
    memory_bytes: int = 48 * 1024**3
    # DD-to-ELL conversion kernel model
    conv_entry_time: float = 2.5e-9  # s per ELL entry (GPU, no divergence)
    conv_divergence_scale: float = 500.0  # edges at which divergence doubles cost
    conv_launch_overhead: float = 20e-6
    # power model (watts): FP pipelines draw with achieved MAC rate, the
    # memory system with achieved bandwidth (see repro.gpu.power)
    idle_power: float = 22.0
    compute_power: float = 230.0  # additional at peak MAC rate
    mem_power: float = 60.0  # additional at peak memory bandwidth

    def kernel_time(self, macs: float, bytes_moved: float) -> float:
        """Roofline kernel duration: max of compute and memory time."""
        return max(macs / self.mac_rate, bytes_moved / self.mem_bandwidth)

    def copy_time(self, nbytes: float) -> float:
        return self.copy_latency + nbytes / self.pcie_bandwidth

    def conversion_time(self, rows: int, width: int, num_edges: int) -> float:
        """GPU DD-to-ELL conversion: one block per row, DFS over the flat DD;
        more edges mean more divergent branches per warp."""
        divergence = 1.0 + num_edges / self.conv_divergence_scale
        return (
            self.conv_launch_overhead
            + rows * max(width, 1) * self.conv_entry_time * divergence
        )


@dataclass(frozen=True)
class CpuSpec:
    """Virtual host CPU (16-core i7-class, as in the paper's testbed)."""

    name: str = "virtual-i7-11700"
    cores: int = 16
    threads_per_process: int = 16
    processes: int = 8
    # DD-to-ELL conversion on the host (single-threaded recursive assembly)
    conv_entry_time: float = 25e-9  # s per ELL entry
    # FlatDD-style CPU DD simulation
    flatdd_machine_rate: float = 1.3e8  # effective MAC/s across all processes
    flatdd_input_overhead: float = 0.5e-3  # s per input state
    # Qiskit-Aer-style per-run host cost (already folded over 8 processes)
    aer_run_overhead: float = 6.9e-3  # s fixed per input
    aer_amp_time: float = 0.195e-6  # s per amplitude per input
    aer_gate_time: float = 1.2e-6  # s per circuit gate per input
    # host-side fusion cost model
    fusion_gate_time: float = 0.2e-3  # s per source gate
    fusion_node_time: float = 1e-6  # s per DD node in fused results
    # power model (watts)
    idle_power: float = 14.0
    active_power: float = 82.0  # additional at full multicore utilization

    def conversion_time(self, rows: int, width: int, num_edges: int) -> float:
        """CPU DD-to-ELL conversion time (exponential in qubit count)."""
        return rows * max(width, 1) * self.conv_entry_time

    def fusion_time(self, source_gates: int, fused_nodes: int) -> float:
        return (
            source_gates * self.fusion_gate_time
            + fused_nodes * self.fusion_node_time
        )


DEFAULT_GPU = GpuSpec()
DEFAULT_CPU = CpuSpec()


def state_block_bytes(num_qubits: int, batch_size: int) -> int:
    """Bytes of one batch of state vectors on the device."""
    return (1 << num_qubits) * batch_size * COMPLEX_BYTES


def ell_kernel_bytes(num_qubits: int, batch_size: int, width: int, ell_bytes: int) -> int:
    """Device traffic of one ELL spMM: ``width`` gathers + one write of the
    state block, plus the gate's ELL arrays."""
    block = state_block_bytes(num_qubits, batch_size)
    return (width + 1) * block + ell_bytes


def dense_kernel_bytes(num_qubits: int, batch_size: int) -> int:
    """Device traffic of one dense batched apply: the in-register butterfly
    streams the state block in and out once."""
    return 2 * state_block_bytes(num_qubits, batch_size)
