"""Circuit transpilation: composable passes and a verifying pass manager."""

from .manager import PassManager, PassRecord, circuits_equivalent, optimize
from .passes import (
    PASSES,
    cancel_inverse_pairs,
    commute_diagonals_right,
    decompose_to_basis,
    merge_rotations,
    remove_identities,
)

__all__ = [
    "cancel_inverse_pairs",
    "circuits_equivalent",
    "commute_diagonals_right",
    "decompose_to_basis",
    "merge_rotations",
    "optimize",
    "PASSES",
    "PassManager",
    "PassRecord",
    "remove_identities",
]
