"""Circuit mutation operators for fuzz testing.

QDiff-style testing ([63] in the paper) mutates quantum programs and checks
the outputs of supposedly-equivalent variants over many inputs.  Mutations
come in two flavors:

* **semantics-preserving** — insert an identity pair, rewrite a gate into
  an equivalent sequence, commute disjoint neighbors: the mutant must stay
  equivalent, so any detected deviation is a *simulator or optimizer bug*;
* **semantics-breaking** — drop a gate, perturb an angle, swap operands:
  the mutant should be distinguishable, so a fuzzer that *fails* to detect
  it has an oracle weakness (or hit an unlucky input batch).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..circuit.circuit import Circuit
from ..circuit.gates import Gate
from ..errors import CircuitError

MutationFn = Callable[[Circuit, np.random.Generator], Circuit]


def _copy(circuit: Circuit) -> Circuit:
    return Circuit(circuit.num_qubits, list(circuit.gates), name=circuit.name)


# -- semantics-preserving -----------------------------------------------------

def insert_identity_pair(circuit: Circuit, rng: np.random.Generator) -> Circuit:
    """Insert ``g . g^-1`` at a random position."""
    out = _copy(circuit)
    position = int(rng.integers(len(out) + 1))
    qubit = int(rng.integers(out.num_qubits))
    choices = ("h", "x", "s", "t", "sx")
    name = choices[int(rng.integers(len(choices)))]
    gate = Gate.make(name, [qubit])
    out.gates[position:position] = [gate, gate.dagger()]
    return out


def rewrite_gate(circuit: Circuit, rng: np.random.Generator) -> Circuit:
    """Replace one gate with an equivalent sequence (z = s s, x = h z h,
    cz = h cx h, rz = two half rotations)."""
    out = _copy(circuit)
    if not out.gates:
        return out
    rewrites: dict[str, Callable[[Gate], list[Gate]]] = {
        "z": lambda g: [Gate("s", g.qubits, (), g.controls)] * 2
        if not g.controls
        else [g],
        "x": lambda g: [
            Gate("h", g.qubits), Gate("z", g.qubits), Gate("h", g.qubits)
        ]
        if not g.controls
        else [
            Gate("h", g.qubits),
            Gate("z", g.qubits, (), g.controls),
            Gate("h", g.qubits),
        ],
        "rz": lambda g: [
            Gate("rz", g.qubits, (g.params[0] / 2,), g.controls),
            Gate("rz", g.qubits, (g.params[0] / 2,), g.controls),
        ],
        "ry": lambda g: [
            Gate("ry", g.qubits, (g.params[0] / 2,), g.controls),
            Gate("ry", g.qubits, (g.params[0] / 2,), g.controls),
        ],
        "swap": lambda g: [
            Gate("x", (g.qubits[1],), (), (g.qubits[0],)),
            Gate("x", (g.qubits[0],), (), (g.qubits[1],)),
            Gate("x", (g.qubits[1],), (), (g.qubits[0],)),
        ]
        if not g.controls
        else [g],
    }
    candidates = [
        i for i, g in enumerate(out.gates) if g.name in rewrites
    ]
    if not candidates:
        return out
    index = candidates[int(rng.integers(len(candidates)))]
    gate = out.gates[index]
    out.gates[index : index + 1] = rewrites[gate.name](gate)
    return out


def commute_disjoint_pair(circuit: Circuit, rng: np.random.Generator) -> Circuit:
    """Swap a random adjacent pair acting on disjoint qubits."""
    out = _copy(circuit)
    candidates = [
        i
        for i in range(len(out) - 1)
        if not set(out.gates[i].all_qubits) & set(out.gates[i + 1].all_qubits)
    ]
    if candidates:
        i = candidates[int(rng.integers(len(candidates)))]
        out.gates[i], out.gates[i + 1] = out.gates[i + 1], out.gates[i]
    return out


# -- semantics-breaking --------------------------------------------------------

def drop_gate(circuit: Circuit, rng: np.random.Generator) -> Circuit:
    """Delete one random gate."""
    out = _copy(circuit)
    if out.gates:
        del out.gates[int(rng.integers(len(out)))]
    return out


def perturb_angle(
    circuit: Circuit, rng: np.random.Generator, magnitude: float = 0.05
) -> Circuit:
    """Nudge one rotation angle (or inject a small rz if none exists)."""
    out = _copy(circuit)
    candidates = [i for i, g in enumerate(out.gates) if g.params]
    if candidates:
        i = candidates[int(rng.integers(len(candidates)))]
        gate = out.gates[i]
        params = list(gate.params)
        params[0] += magnitude
        out.gates[i] = Gate(gate.name, gate.qubits, tuple(params), gate.controls)
    else:
        out.rz(magnitude, int(rng.integers(out.num_qubits)))
    return out


def swap_operands(circuit: Circuit, rng: np.random.Generator) -> Circuit:
    """Reverse the operands of a random two-operand gate (cx control/target
    exchange changes semantics; symmetric gates are skipped)."""
    out = _copy(circuit)
    candidates = [
        i
        for i, g in enumerate(out.gates)
        if len(g.controls) == 1 and g.name == "x"
    ]
    if candidates:
        i = candidates[int(rng.integers(len(candidates)))]
        gate = out.gates[i]
        out.gates[i] = Gate("x", (gate.controls[0],), (), (gate.qubits[0],))
    else:
        return drop_gate(out, rng)
    return out


PRESERVING: dict[str, MutationFn] = {
    "insert_identity_pair": insert_identity_pair,
    "rewrite_gate": rewrite_gate,
    "commute_disjoint_pair": commute_disjoint_pair,
}

BREAKING: dict[str, MutationFn] = {
    "drop_gate": drop_gate,
    "perturb_angle": perturb_angle,
    "swap_operands": swap_operands,
}
