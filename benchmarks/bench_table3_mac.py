"""Table 3 — #MAC after gate fusion (exact analytic reproduction)."""

from conftest import run_once
from repro.bench.experiments import table3
from repro.bench.tables import geomean


def test_table3_mac_counts(benchmark, scale):
    rows = run_once(benchmark, table3.run, scale)
    for row in rows:
        assert row["bqsim_cost"] <= row["flatdd_cost"]
        assert row["qiskit-aer_cost"] <= row["cuquantum_cost"]
    if scale in ("medium", "paper"):
        # cuQuantum column is exact: 4 MACs per gate per amplitude
        for row in rows:
            assert row["cuquantum_cost"] == 4 * row["num_gates"]
        # paper geomeans: 10.76x / 3.85x / 1.23x
        assert geomean([r["improve_cuquantum"] for r in rows]) > 3
