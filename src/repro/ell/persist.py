"""Persisting compiled simulation artifacts.

The paper highlights that "the circuit is optimized once into a reusable
simulation task graph"; this module makes the expensive one-time artifacts
reusable *across processes* by saving them to a single ``.npz`` archive.

Two formats are supported:

* **v1** — :class:`EllBundle`: just the ordered fused-gate ELL matrices.
* **v2** — :class:`CompiledPlan`: the *full* compiled execution plan — the
  fusion-plan metadata (per-fused-gate costs, source-gate provenance,
  non-zero totals), the hybrid conversion decisions (``conv_infos``), and
  optionally the converted ELL matrices.  This is what the disk tier of
  :class:`~repro.sim.base.PlanCache` round-trips so a warm process skips
  stages 1-2 (fusion + conversion) entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import ConversionError
from .format import ELLMatrix

_FORMAT_VERSION = 1
_PLAN_FORMAT_VERSION = 2


@dataclass(frozen=True)
class EllBundle:
    """An ordered list of fused-gate ELL matrices for one circuit."""

    circuit_name: str
    num_qubits: int
    matrices: tuple[ELLMatrix, ...]

    def __len__(self) -> int:
        return len(self.matrices)

    @property
    def total_cost(self) -> int:
        """#MAC per amplitude across the bundle."""
        return sum(m.width for m in self.matrices)

    def apply(self, states: np.ndarray) -> np.ndarray:
        """Push a state block through every matrix in order.

        Runs on compiled gather plans with consecutive width-1 matrices
        composed into a single pass (see :func:`repro.ell.build_apply_plans`).
        """
        from .spmm import build_apply_plans

        for plan in build_apply_plans(self.matrices):
            states = plan.apply(states)
        return states


def save_bundle(bundle: EllBundle, path: str | Path) -> Path:
    """Write a bundle as a compressed ``.npz`` archive."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "num_qubits": np.array(bundle.num_qubits),
        "num_gates": np.array(len(bundle.matrices)),
        "circuit_name": np.array(bundle.circuit_name),
    }
    for i, matrix in enumerate(bundle.matrices):
        payload[f"values_{i}"] = matrix.values
        payload[f"cols_{i}"] = matrix.cols
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_bundle(path: str | Path) -> EllBundle:
    """Load a bundle previously written by :func:`save_bundle`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ConversionError(
                f"bundle format {version} not supported (expected {_FORMAT_VERSION})"
            )
        num_qubits = int(data["num_qubits"])
        num_gates = int(data["num_gates"])
        matrices = []
        for i in range(num_gates):
            try:
                values = data[f"values_{i}"]
                cols = data[f"cols_{i}"]
            except KeyError:
                raise ConversionError(f"bundle is missing arrays for gate {i}") from None
            matrices.append(ELLMatrix(num_qubits, values, cols))
        return EllBundle(
            circuit_name=str(data["circuit_name"]),
            num_qubits=num_qubits,
            matrices=tuple(matrices),
        )


def bundle_from_plan(circuit_name: str, num_qubits: int, ells) -> EllBundle:
    """Wrap a list of converted ELL matrices as a bundle."""
    return EllBundle(
        circuit_name=circuit_name,
        num_qubits=num_qubits,
        matrices=tuple(ells),
    )


# ---------------------------------------------------------------------------
# Format v2: full compiled execution plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledPlan:
    """Everything stages 1-2 produce for one circuit, minus the DDs.

    ``matrices`` is ``None`` when the plan was compiled model-only
    (``execute=False``): the metadata still lets a warm run skip fusion and
    conversion *timing* work, but numeric execution needs the matrices and
    falls back to a rebuild.
    """

    fingerprint: str
    circuit_name: str
    num_qubits: int
    algorithm: str
    source_gate_count: int
    fused_nodes: int
    gate_costs: tuple[int, ...]
    gate_indices: tuple[tuple[int, ...], ...]
    gate_nnz: tuple[float, ...]
    conv_infos: tuple[dict, ...]
    matrices: tuple[ELLMatrix, ...] | None = None

    def __len__(self) -> int:
        return len(self.gate_costs)

    @property
    def has_matrices(self) -> bool:
        return self.matrices is not None

    def to_fusion_plan(self):
        """Reconstruct a :class:`~repro.fusion.plan.FusionPlan` skeleton.

        The fused-gate DDs are gone (``dd=None``); costs, provenance, and
        nnz totals — everything stage 3 and the stats consumers read — are
        intact.
        """
        from ..fusion.plan import FusedGate, FusionPlan

        gates = tuple(
            FusedGate(dd=None, cost=cost, gate_indices=indices, nnz=nnz)
            for cost, indices, nnz in zip(
                self.gate_costs, self.gate_indices, self.gate_nnz
            )
        )
        return FusionPlan(
            num_qubits=self.num_qubits,
            gates=gates,
            algorithm=self.algorithm,
            source_gate_count=self.source_gate_count,
        )


def save_compiled_plan(plan: CompiledPlan, path: str | Path) -> Path:
    """Write a compiled plan as a compressed ``.npz`` archive (atomically)."""
    path = Path(path)
    indices_flat = np.array(
        [i for indices in plan.gate_indices for i in indices], dtype=np.int64
    )
    offsets = np.cumsum([0] + [len(i) for i in plan.gate_indices]).astype(np.int64)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_PLAN_FORMAT_VERSION),
        "fingerprint": np.array(plan.fingerprint),
        "circuit_name": np.array(plan.circuit_name),
        "num_qubits": np.array(plan.num_qubits),
        "algorithm": np.array(plan.algorithm),
        "source_gate_count": np.array(plan.source_gate_count),
        "fused_nodes": np.array(plan.fused_nodes),
        "num_gates": np.array(len(plan.gate_costs)),
        "gate_costs": np.array(plan.gate_costs, dtype=np.int64),
        "gate_nnz": np.array(plan.gate_nnz, dtype=np.float64),
        "gate_indices_flat": indices_flat,
        "gate_indices_offsets": offsets,
        "conv_routes": np.array([i["route"] for i in plan.conv_infos]),
        "conv_edges": np.array(
            [i["edges"] for i in plan.conv_infos], dtype=np.int64
        ),
        "conv_widths": np.array(
            [i["width"] for i in plan.conv_infos], dtype=np.int64
        ),
        "conv_times": np.array(
            [i["time"] for i in plan.conv_infos], dtype=np.float64
        ),
        "has_matrices": np.array(1 if plan.has_matrices else 0),
    }
    if plan.matrices is not None:
        for i, matrix in enumerate(plan.matrices):
            payload[f"values_{i}"] = matrix.values
            payload[f"cols_{i}"] = matrix.cols
    final = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    tmp = final.with_name(final.name + ".tmp.npz")
    np.savez_compressed(tmp, **payload)
    tmp.replace(final)
    return final


def load_compiled_plan(path: str | Path) -> CompiledPlan:
    """Load a compiled plan previously written by :func:`save_compiled_plan`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _PLAN_FORMAT_VERSION:
            raise ConversionError(
                f"plan format {version} not supported "
                f"(expected {_PLAN_FORMAT_VERSION})"
            )
        num_qubits = int(data["num_qubits"])
        num_gates = int(data["num_gates"])
        flat = data["gate_indices_flat"]
        offsets = data["gate_indices_offsets"]
        gate_indices = tuple(
            tuple(int(i) for i in flat[offsets[g] : offsets[g + 1]])
            for g in range(num_gates)
        )
        conv_infos = tuple(
            {
                "route": str(route),
                "edges": int(edges),
                "width": int(width),
                "time": float(t),
            }
            for route, edges, width, t in zip(
                data["conv_routes"],
                data["conv_edges"],
                data["conv_widths"],
                data["conv_times"],
            )
        )
        matrices: tuple[ELLMatrix, ...] | None = None
        if int(data["has_matrices"]):
            loaded = []
            for i in range(num_gates):
                try:
                    values = data[f"values_{i}"]
                    cols = data[f"cols_{i}"]
                except KeyError:
                    raise ConversionError(
                        f"plan is missing arrays for gate {i}"
                    ) from None
                loaded.append(ELLMatrix(num_qubits, values, cols))
            matrices = tuple(loaded)
        return CompiledPlan(
            fingerprint=str(data["fingerprint"]),
            circuit_name=str(data["circuit_name"]),
            num_qubits=num_qubits,
            algorithm=str(data["algorithm"]),
            source_gate_count=int(data["source_gate_count"]),
            fused_nodes=int(data["fused_nodes"]),
            gate_costs=tuple(int(c) for c in data["gate_costs"]),
            gate_indices=gate_indices,
            gate_nnz=tuple(float(x) for x in data["gate_nnz"]),
            conv_infos=conv_infos,
            matrices=matrices,
        )
