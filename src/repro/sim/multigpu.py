"""Multi-GPU batch partitioning (the paper's Section 4.2 extension).

"The batch of state vectors can be partitioned across multiple GPUs ...
the circuit is optimized once into a reusable simulation task graph that can
run different batches on multiple GPUs."

:class:`MultiGpuBQSimSimulator` does exactly that: stage 1 (fusion) and
stage 2 (conversion) run once, then the batch stream is dealt round-robin to
``num_devices`` virtual GPUs, each executing the same task-graph template
over its own four rotating buffers.  The modeled runtime is the slowest
device's makespan plus the shared one-time stages, so speed-up approaches
``num_devices`` once per-device batch counts amortize the pipeline ramp-up.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..circuit import Circuit, InputBatch
from ..ell.spmm import default_backend
from ..errors import CheckpointError, SimulationError
from ..gpu.device import VirtualGPU
from ..gpu.power import PowerReport, cpu_power_from_utilization, gpu_power_from_work
from ..gpu.spec import CpuSpec, GpuSpec, ell_kernel_bytes, state_block_bytes
from ..kernels.engine import get_engine
from ..obs import CANONICAL_STAGES
from ..profile import StageTimer
from ..resilience import BackendLadder, check_state_block, fault_injection
from .base import BatchSpec, RunObservation, SimulationResult
from .bqsim import BQSimSimulator


class MultiGpuBQSimSimulator(BQSimSimulator):
    """BQSim with the input stream partitioned over several virtual GPUs.

    The paper's Section 4.2 scaling discussion, made measurable: batches
    are split across ``num_devices`` independent device models (plans
    compile once and are shared), modeled time is the slowest device's
    timeline, and amplitudes remain exact and bit-identical to the
    single-GPU run.  Example::

        sim = MultiGpuBQSimSimulator(num_devices=2)
        result = sim.run(make_circuit("qft", 4), BatchSpec(4, 8))
        assert len(result.outputs) == 4
    """

    name = "bqsim-multigpu"

    def __init__(self, num_devices: int = 2, **kwargs):
        if num_devices < 1:
            raise SimulationError("need at least one device")
        super().__init__(**kwargs)
        self.num_devices = num_devices

    def run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None = None,
        execute: bool = True,
        resume: str | None = None,
    ) -> SimulationResult:
        if resume is not None:
            raise CheckpointError(
                "checkpoint resume is single-device; use BQSimSimulator"
            )
        with fault_injection(self.faults):
            return self._run_multi(circuit, spec, batches, execute)

    def _run_multi(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None,
        execute: bool,
    ) -> SimulationResult:
        wall_start = time.perf_counter()
        n = circuit.num_qubits
        eng = get_engine(self.engine)
        obs = RunObservation()
        timer = StageTimer(stages=CANONICAL_STAGES)

        with obs.tracer.span(
            f"{self.name}.run",
            simulator=self.name,
            circuit=circuit.name,
            num_qubits=n,
            num_devices=self.num_devices,
            num_batches=spec.num_batches,
            batch_size=spec.batch_size,
            execute=execute,
        ):
            with timer.time("fusion") as span:
                prepared, plan_source = self._prepare(circuit, execute)
                span.set(
                    plan_source=plan_source,
                    fused_gates=len(prepared["plan"].gates),
                )
            plan = prepared["plan"]
            conv_infos = prepared["conv_infos"]
            t_fusion = self.cpu.fusion_time(
                len(circuit.gates), prepared["fused_nodes"]
            )
            t_conversion = sum(info["time"] for info in conv_infos)
            with timer.time("convert"):
                fresh = prepared["ells"] is None
                ells = self._materialize_ells(prepared) if execute else None
                if not (execute and fresh):
                    self._trace_conv_infos(conv_infos)

            with timer.time("io"):
                batches = self._resolve_batches(circuit, spec, batches, execute)
            # deal batches round-robin: device d gets batches d, d+k, d+2k, ...
            shards: list[list[int]] = [
                list(range(d, spec.num_batches, self.num_devices))
                for d in range(self.num_devices)
            ]
            makespans = []
            total_macs = total_bytes = 0.0
            outputs: list[np.ndarray | None] | None = (
                [None] * spec.num_batches if execute else None
            )
            #: one fallback ladder shared by every device: a backend broken
            #: on one shard is broken on all of them
            ladder = BackendLadder() if execute else None
            total_retries = 0
            with timer.time("execute"):
                for device_index, shard in enumerate(shards):
                    if not shard:
                        makespans.append(0.0)
                        continue
                    with obs.tracer.span(
                        "execute.device",
                        device=device_index,
                        num_batches=len(shard),
                    ) as span:
                        device = VirtualGPU(
                            self.gpu,
                            mode="graph" if self.task_graph else "stream",
                            retry=self.retry,
                            seed=spec.seed + device_index,
                            engine=eng,
                        )
                        shard_spec = BatchSpec(len(shard), spec.batch_size, spec.seed)
                        shard_batches = (
                            [batches[i] for i in shard] if execute else None
                        )

                        def on_batch(ib, states, device_index=device_index):
                            return check_state_block(
                                states, self.health,
                                label=f"{circuit.name} dev{device_index} "
                                      f"batch {ib}",
                            )

                        work = {"macs": 0.0, "bytes": 0.0}
                        shard_out, _ = self._simulate(
                            device, plan, conv_infos, ells, shard_batches,
                            shard_spec, work, ladder=ladder,
                            on_batch=on_batch if execute else None,
                        )
                        timeline = device.run()
                        span.set(modeled_makespan_s=timeline.makespan)
                    makespans.append(timeline.makespan)
                    total_retries += timeline.total_retries()
                    total_macs += work["macs"]
                    total_bytes += work["bytes"]
                    if execute:
                        for local, global_index in enumerate(shard):
                            outputs[global_index] = shard_out[local]

        t_sim = max(makespans)
        total = t_fusion + t_conversion + t_sim
        power = PowerReport(
            gpu_watts=self.num_devices
            * gpu_power_from_work(
                total_macs / self.num_devices,
                total_bytes / self.num_devices,
                t_sim,
                self.gpu,
            ),
            cpu_watts=cpu_power_from_utilization(
                min(t_fusion / total, 1.0) if total > 0 else 0.0, self.cpu
            ),
        )
        return SimulationResult(
            simulator=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            spec=spec,
            modeled_time=total,
            breakdown={
                "fusion": t_fusion,
                "conversion": t_conversion,
                "simulation": t_sim,
            },
            power=power,
            outputs=outputs,
            wall_time=time.perf_counter() - wall_start,
            stats=obs.finalize(
                {
                    "engine": eng.name,
                    "fused_gates": len(plan),
                    "total_cost": plan.total_cost,
                    "macs": plan.macs(spec.num_inputs),
                    "num_devices": self.num_devices,
                    "device_makespans": makespans,
                    "plan": plan,
                    "plan_source": plan_source,
                    "plan_key": prepared["key"],
                },
                timer,
                self._plans,
                resilience_extra={
                    "backend": ladder.backend if ladder else default_backend(),
                    "demoted": bool(ladder.demoted) if ladder else False,
                    "task_retries": total_retries,
                },
            ),
        )
