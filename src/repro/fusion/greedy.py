"""FlatDD-style greedy gate fusion (the fusion baseline of Table 3).

FlatDD optimizes CPU-based *single-input* QCS, where the work of applying a
DD gate is proportional to the matrix's **total** non-zero count rather than
its max NZR (a CPU walks every non-zero once; a GPU pays the padded row
maximum for every row).  Its greedy pass therefore fuses whenever the fused
gate's total non-zeros do not exceed the sum of the parts.

The resulting plan is evaluated here under the *BQCS* metric (max NZR), the
paper's apples-to-apples comparison: FlatDD's plans are good but
systematically a bit worse for batched GPU execution (Table 3's ~1.1-1.7x).
"""

from __future__ import annotations

from ..circuit.circuit import Circuit
from ..dd.manager import DDManager
from ..errors import FusionError
from ..obs import get_metrics, get_tracer
from .bqcs import _fuse, _lift, _record_plan_shape
from .plan import FusedGate, FusionPlan


def flatdd_fusion(
    mgr: DDManager,
    circuit: Circuit,
    slack: float = 1.0,
    strict: bool = True,
) -> FusionPlan:
    """Greedy left-to-right fusion on the total-non-zero (CPU) metric.

    ``slack`` scales the acceptance threshold; with ``strict`` (FlatDD's
    behaviour) fusion happens only when it *reduces* total non-zeros —
    ``nnz(fused) < slack * (nnz(a) + nnz(b))`` — which leaves more gates
    unfused than BQSim's cost-aware pass and yields the slightly higher
    batched #MAC seen in Table 3.
    """
    if circuit.num_qubits != mgr.num_qubits:
        raise FusionError("manager/circuit width mismatch")
    metrics = get_metrics()
    with get_tracer().span("fusion.flatdd", gates=len(circuit.gates)) as span:
        items = _lift(mgr, circuit)
        if not items:
            return FusionPlan(circuit.num_qubits, (), "flatdd", 0)
        out: list[FusedGate] = [items[0]]
        for item in items[1:]:
            candidate = _fuse(mgr, out[-1], item)
            threshold = slack * (out[-1].nnz + item.nnz)
            if candidate.nnz < threshold or (
                not strict and candidate.nnz <= threshold
            ):
                metrics.inc("fusion.greedy_accept")
                out[-1] = candidate
            else:
                metrics.inc("fusion.greedy_reject")
                out.append(item)
        span.set(fused_gates=len(out))
    _record_plan_shape("flatdd", out)
    return FusionPlan(
        num_qubits=circuit.num_qubits,
        gates=tuple(out),
        algorithm="flatdd",
        source_gate_count=len(circuit.gates),
    )
