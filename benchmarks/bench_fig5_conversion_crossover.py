"""Figure 5 — GPU vs CPU DD-to-ELL conversion crossover."""

from conftest import run_once
from repro.bench.experiments import fig5


def test_fig5_conversion_crossover(benchmark, scale):
    data = run_once(benchmark, fig5.run, scale)
    series = data["time_vs_qubits"]
    # CPU conversion time grows ~2^n; the GPU's parallel kernel grows slower
    assert series[-1]["cpu_ms"] / series[0]["cpu_ms"] > (
        series[-1]["gpu_ms"] / series[0]["gpu_ms"]
    )
    # divergence: at fixed n the GPU/CPU ratio grows with DD edges
    biggest = max(s["num_qubits"] for s in data["samples"])
    group = sorted(
        (s for s in data["samples"] if s["num_qubits"] == biggest),
        key=lambda s: s["edges"],
    )
    assert group[-1]["gpu_s"] / group[-1]["cpu_s"] >= (
        group[0]["gpu_s"] / group[0]["cpu_s"]
    )
