"""Trace and metrics exporters.

Two output formats:

* **Chrome trace-event JSON** (:func:`chrome_trace`) — loadable in
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Host spans
  render as one process ("host pipeline", one track per thread, nesting
  shown by stacked slices) and a modeled
  :class:`~repro.gpu.engine.Timeline` renders as a second process
  ("gpu (modeled)") with one track per virtual engine — ``h2d``,
  ``compute``, ``d2h`` — so copy/compute overlap is directly visible.
* **metrics JSONL** (:func:`write_metrics_jsonl`) — one JSON object per
  line, each a labeled :class:`~repro.obs.metrics.Metrics` snapshot or
  delta; the bench harness writes one line per experiment next to its
  result files.

:func:`validate_chrome_trace` checks the structural schema the viewers
rely on and is used by the tests and the CI smoke job.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .tracer import Span

#: pid of the host-span process in exported traces
HOST_PID = 0
#: pid of the modeled-GPU process in exported traces
GPU_PID = 1

#: stable track order for the modeled GPU engines
_ENGINE_LANES = ("host", "h2d", "compute", "d2h")


def _meta(name: str, pid: int, tid: int | None = None, value: str = "") -> dict:
    event = {"name": name, "ph": "M", "pid": pid, "args": {"name": value}}
    if tid is not None:
        event["tid"] = tid
    return event


def spans_to_events(
    spans: Sequence[Span], pid: int = HOST_PID, origin: float | None = None
) -> list[dict]:
    """Complete ('X') trace events for host spans, one track per thread."""
    if origin is None:
        origin = min((s.start for s in spans), default=0.0)
    threads = sorted({s.thread for s in spans})
    tid_of = {thread: i for i, thread in enumerate(threads)}
    events = [
        _meta("process_name", pid, value="host pipeline"),
        _meta("process_sort_index", pid, value=str(pid)),
    ]
    for thread, tid in tid_of.items():
        events.append(_meta("thread_name", pid, tid, thread))
    for span in spans:
        args = {str(k): _json_safe(v) for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": str(span.attrs.get("category", "span")),
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid_of[span.thread],
                "args": args,
            }
        )
    return events


def timeline_to_events(timeline, pid: int = GPU_PID) -> list[dict]:
    """Complete ('X') trace events for a modeled timeline, one track per
    virtual engine, so h2d/compute/d2h overlap is visible as parallel
    slices.  Timestamps are modeled seconds from the graph launch."""
    events = [
        _meta("process_name", pid, value="gpu (modeled)"),
        _meta("process_sort_index", pid, value=str(pid)),
    ]
    used = {t.engine for t in timeline.tasks}
    for lane, name in enumerate(_ENGINE_LANES):
        if name in used:
            events.append(_meta("thread_name", pid, lane, f"engine:{name}"))
    for task in timeline.tasks:
        lane = (
            _ENGINE_LANES.index(task.engine)
            if task.engine in _ENGINE_LANES
            else len(_ENGINE_LANES)
        )
        events.append(
            {
                "name": task.name,
                "cat": task.engine,
                "ph": "X",
                "ts": max(task.start, 0.0) * 1e6,
                "dur": task.duration * 1e6,
                "pid": pid,
                "tid": lane,
                "args": {"deps": list(task.deps), "modeled": True},
            }
        )
    return events


def chrome_trace(
    spans: Sequence[Span] = (),
    timeline=None,
    metadata: dict | None = None,
) -> dict:
    """Merge host spans and a modeled timeline into one trace document."""
    events: list[dict] = []
    if spans:
        events.extend(spans_to_events(spans))
    if timeline is not None and timeline.tasks:
        events.extend(timeline_to_events(timeline))
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        doc["otherData"] = {str(k): _json_safe(v) for k, v in metadata.items()}
    return doc


def write_chrome_trace(
    path: str | Path,
    spans: Sequence[Span] = (),
    timeline=None,
    metadata: dict | None = None,
) -> Path:
    """Serialize :func:`chrome_trace` to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans, timeline, metadata), indent=1))
    return path


def validate_chrome_trace(doc) -> list[str]:
    """Structural schema check of a trace document.

    Returns a list of problems (empty means the trace is well formed):
    the document must be an object with a ``traceEvents`` list whose 'X'
    events carry name/pid/tid plus numeric non-negative ts/dur, and whose
    'M' events carry an ``args.name``.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["trace must be an object with a 'traceEvents' list"]
    for i, event in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if phase == "M":
            if not isinstance(event.get("args", {}).get("name", None), str):
                problems.append(f"{where}: metadata event without args.name")
            continue
        if phase != "X":
            problems.append(f"{where}: unsupported phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{where}: {key!r} must be a non-negative number")
    return problems


def trace_track_names(doc) -> list[str]:
    """The distinct (process, thread) track names declared in a trace."""
    processes: dict[int, str] = {}
    tracks: dict[tuple[int, int], str] = {}
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            processes[event["pid"]] = event["args"]["name"]
        elif event.get("name") == "thread_name":
            tracks[(event["pid"], event["tid"])] = event["args"]["name"]
    return [
        f"{processes.get(pid, pid)}/{name}"
        for (pid, _tid), name in sorted(tracks.items())
    ]


# ---------------------------------------------------------------------------
# metrics JSONL
# ---------------------------------------------------------------------------

def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "item"):  # numpy scalars
        return _json_safe(value.item())
    return repr(value)


def metrics_record(label: str, metrics: dict, **extra) -> dict:
    """One JSONL record: a labeled metrics snapshot/delta plus extras."""
    record = {"label": label, **{k: _json_safe(v) for k, v in extra.items()}}
    record["metrics"] = _json_safe(metrics)
    return record


#: result.stats entries that are live objects or bulk arrays, not JSON
_NON_JSON_STATS = ("plan", "snapshots")


def simulation_stats_record(result) -> dict:
    """One JSON document for a :class:`SimulationResult` (``--stats-json``).

    Everything a script needs without parsing human output: identity,
    modeled/wall timings and breakdowns, and the full stats dict —
    including ``plan_cache`` and ``resilience`` summaries — minus the live
    objects (the fusion plan, snapshot arrays) that have no JSON form.
    """
    stats = {
        key: value
        for key, value in result.stats.items()
        if key not in _NON_JSON_STATS
    }
    return _json_safe(
        {
            "simulator": result.simulator,
            "circuit": result.circuit_name,
            "num_qubits": result.num_qubits,
            "spec": {
                "num_batches": result.spec.num_batches,
                "batch_size": result.spec.batch_size,
                "seed": result.spec.seed,
                "num_inputs": result.spec.num_inputs,
            },
            "modeled_time_s": result.modeled_time,
            "wall_time_s": result.wall_time,
            "breakdown": dict(result.breakdown),
            "executed": result.outputs is not None,
            "num_output_batches": (
                len(result.outputs) if result.outputs is not None else 0
            ),
            "stats": stats,
        }
    )


def service_job_stats_record(job, service) -> dict:
    """One JSON document for a serviced job (``repro submit --stats-json``).

    Schema-aligned with :func:`simulation_stats_record` so scripts can
    consume ``repro simulate`` and ``repro submit`` output uniformly: the
    same top-level keys (``simulator``, ``circuit``, ``spec``,
    ``modeled_time_s``, ``stats`` …) with ``stats.plan_cache`` always
    present.  Service-only detail lands under ``stats.service`` (the
    :meth:`~repro.service.workers.BatchSimulationService.stats` summary)
    plus ``stats.slo`` (per-priority latency/queue-age percentiles,
    deadline and degradation rates) and ``stats.job`` (per-job lifecycle).
    """
    svc = service.stats()
    executed = job.result is not None
    return _json_safe(
        {
            "simulator": "service",
            "circuit": job.circuit.name,
            "num_qubits": job.num_qubits,
            "spec": {
                "num_batches": 1,
                "batch_size": job.num_inputs,
                "seed": 0,
                "num_inputs": job.num_inputs,
            },
            "modeled_time_s": svc["modeled_time_s"],
            "wall_time_s": svc["wall_time_s"],
            "breakdown": {},
            "executed": executed,
            "num_output_batches": 1 if executed else 0,
            "stats": {
                "plan_cache": svc["plan_cache"],
                "slo": svc["slo"],
                "service": svc,
                "job": {
                    "job_id": job.job_id,
                    "status": job.status.value,
                    "group_key": job.group_key,
                    "attempts": job.attempts,
                    "solo_retry": job.solo_retry,
                    "priority": job.priority,
                    "error": job.error,
                },
            },
        }
    )


def write_metrics_jsonl(path: str | Path, records: Iterable[dict]) -> Path:
    """Write records as one JSON object per line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(_json_safe(record)) + "\n")
    return path
