"""Figure 12 — BQSim runtime breakdown vs number of batches.

Gate fusion and DD-to-ELL conversion are one-time costs; as the batch count
N grows they amortize and simulation dominates (the paper's QNN n=21 goes
from 16.2% + 41.3% overhead at N=10 to under 7% at N=200).
"""

from __future__ import annotations

from ...circuit.generators import make_circuit
from ...obs import canonical_breakdown
from ...sim import BQSimSimulator, BatchSpec
from ..tables import print_table

CIRCUITS = {
    "small": (("routing", 6), ("portfolio", 8), ("qnn", 8)),
    "medium": (("routing", 6), ("portfolio", 16), ("qnn", 12)),
    "paper": (("routing", 6), ("portfolio", 18), ("qnn", 17)),
}
BATCH_COUNTS = (10, 20, 50, 100, 200)


def run(scale: str = "small") -> list[dict]:
    execute = scale == "small"
    batch_size = 16 if execute else 256
    bqsim = BQSimSimulator()
    rows = []
    for family, n in CIRCUITS.get(scale, CIRCUITS["small"]):
        circuit = make_circuit(family, n)
        for num_batches in BATCH_COUNTS:
            spec = BatchSpec(num_batches=num_batches, batch_size=batch_size)
            result = bqsim.run(circuit, spec, execute=execute)
            total = result.modeled_time
            # both breakdowns folded onto the canonical stage names so the
            # modeled attribution can be compared against wall-clock timings
            modeled = canonical_breakdown(result.breakdown)
            rows.append(
                {
                    "family": family,
                    "num_qubits": n,
                    "num_batches": num_batches,
                    "fusion_pct": 100 * result.breakdown["fusion"] / total,
                    "conversion_pct": 100 * result.breakdown["conversion"] / total,
                    "simulation_pct": 100 * result.breakdown["simulation"] / total,
                    "total_s": total,
                    "modeled_breakdown": modeled,
                    "wall_breakdown": result.stats["wall_breakdown"],
                }
            )
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    print_table(
        f"Figure 12: runtime breakdown in % (scale={scale})",
        ["circuit", "n", "N", "fusion %", "conversion %", "simulation %"],
        [
            [
                r["family"],
                r["num_qubits"],
                r["num_batches"],
                f"{r['fusion_pct']:.1f}",
                f"{r['conversion_pct']:.1f}",
                f"{r['simulation_pct']:.1f}",
            ]
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
