"""A QDiff-style differential fuzzer driven by batch simulation.

The loop: mutate a seed circuit, simulate seed and mutant over a shared
random input batch with BQSim, and compare.  Semantics-preserving mutants
that *deviate* expose simulator/optimizer bugs; semantics-breaking mutants
that go *undetected* expose oracle blind spots.  Because each comparison is
one batch simulation, the oracle cost is exactly the BQCS workload the
paper accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.circuit import Circuit
from ..circuit.inputs import random_batch
from ..errors import SimulationError
from ..sim.base import BatchSpec
from ..sim.bqsim import BQSimSimulator
from .mutations import BREAKING, PRESERVING, MutationFn


@dataclass
class FuzzFinding:
    """One anomalous (circuit, mutant) pair."""

    kind: str  # "preserving-deviation" or "breaking-undetected"
    mutation: str
    iteration: int
    deviation: float
    mutant: Circuit


@dataclass
class FuzzReport:
    """Aggregate fuzzing outcome."""

    iterations: int
    preserving_checked: int = 0
    breaking_checked: int = 0
    breaking_detected: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no preserving mutant deviated."""
        return not any(f.kind == "preserving-deviation" for f in self.findings)

    @property
    def detection_rate(self) -> float:
        if self.breaking_checked == 0:
            return 1.0
        return self.breaking_detected / self.breaking_checked


class DifferentialFuzzer:
    """Batch-simulation differential fuzzing of one seed circuit."""

    def __init__(
        self,
        batch_size: int = 32,
        atol: float = 1e-8,
        detect_threshold: float = 1e-6,
        simulator: BQSimSimulator | None = None,
    ):
        self.batch_size = batch_size
        self.atol = atol
        self.detect_threshold = detect_threshold
        self.simulator = simulator or BQSimSimulator()

    def _deviation(self, a: Circuit, b: Circuit, seed: int) -> float:
        """Max amplitude deviation (up to global phase) over one batch."""
        batch = random_batch(a.num_qubits, self.batch_size, rng=seed)
        spec = BatchSpec(num_batches=1, batch_size=self.batch_size)
        out_a = self.simulator.run(a, spec, batches=[batch]).outputs[0]
        out_b = self.simulator.run(b, spec, batches=[batch]).outputs[0]
        anchor = np.unravel_index(np.argmax(np.abs(out_a)), out_a.shape)
        if abs(out_b[anchor]) < 1e-14:
            return float("inf")
        phase = out_a[anchor] / out_b[anchor]
        if abs(abs(phase) - 1.0) > 1e-6:
            return float("inf")
        return float(np.abs(out_a - phase * out_b).max())

    def run(
        self,
        seed_circuit: Circuit,
        iterations: int = 20,
        seed: int = 0,
        preserving: dict[str, MutationFn] | None = None,
        breaking: dict[str, MutationFn] | None = None,
    ) -> FuzzReport:
        """Alternate preserving and breaking mutations for ``iterations``."""
        if iterations < 1:
            raise SimulationError("need at least one fuzzing iteration")
        preserving = PRESERVING if preserving is None else preserving
        breaking = BREAKING if breaking is None else breaking
        rng = np.random.default_rng(seed)
        report = FuzzReport(iterations=iterations)
        for k in range(iterations):
            if preserving and (k % 2 == 0 or not breaking):
                name = list(preserving)[int(rng.integers(len(preserving)))]
                mutant = preserving[name](seed_circuit, rng)
                deviation = self._deviation(seed_circuit, mutant, seed + k)
                report.preserving_checked += 1
                if deviation > self.atol:
                    report.findings.append(
                        FuzzFinding(
                            "preserving-deviation", name, k, deviation, mutant
                        )
                    )
            elif breaking:
                name = list(breaking)[int(rng.integers(len(breaking)))]
                mutant = breaking[name](seed_circuit, rng)
                deviation = self._deviation(seed_circuit, mutant, seed + k)
                report.breaking_checked += 1
                if deviation > self.detect_threshold:
                    report.breaking_detected += 1
                else:
                    report.findings.append(
                        FuzzFinding(
                            "breaking-undetected", name, k, deviation, mutant
                        )
                    )
        return report
