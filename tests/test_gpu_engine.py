"""Tests for the discrete-event engines and the scheduler."""

import pytest

from repro.errors import DeviceError
from repro.gpu.engine import Task, Timeline, schedule


def make_tasks(specs):
    """specs: list of (name, engine, duration, dep-indices)."""
    tasks = []
    for i, (name, engine, duration, deps) in enumerate(specs):
        tasks.append(Task(tid=i, name=name, engine=engine, duration=duration,
                          deps=tuple(deps)))
    return tasks


def test_fifo_on_one_engine():
    tasks = make_tasks([
        ("a", "compute", 1.0, []),
        ("b", "compute", 2.0, []),
    ])
    tl = schedule(tasks)
    assert tasks[0].start == 0.0 and tasks[0].end == 1.0
    assert tasks[1].start == 1.0 and tasks[1].end == 3.0
    tl.validate()


def test_independent_engines_overlap():
    tasks = make_tasks([
        ("copy", "h2d", 2.0, []),
        ("kernel", "compute", 2.0, []),
    ])
    tl = schedule(tasks)
    assert tl.makespan == 2.0
    assert tl.overlap_fraction() == pytest.approx(1.0)


def test_dependencies_delay_start():
    tasks = make_tasks([
        ("copy", "h2d", 2.0, []),
        ("kernel", "compute", 1.0, [0]),
    ])
    tl = schedule(tasks)
    assert tasks[1].start == 2.0
    assert tl.makespan == 3.0


def test_serialize_removes_overlap():
    tasks = make_tasks([
        ("copy", "h2d", 2.0, []),
        ("kernel", "compute", 2.0, []),
    ])
    tl = schedule(tasks, serialize=True)
    assert tl.makespan == 4.0
    assert tl.overlap_fraction() == 0.0


def test_unsubmitted_dependency_rejected():
    tasks = [Task(tid=0, name="a", engine="compute", duration=1.0, deps=(7,))]
    with pytest.raises(DeviceError, match="unsubmitted"):
        schedule(tasks)


def test_unknown_engine_rejected():
    with pytest.raises(DeviceError, match="engine"):
        Task(tid=0, name="a", engine="warp", duration=1.0)


def test_negative_duration_rejected():
    with pytest.raises(DeviceError, match="negative"):
        Task(tid=0, name="a", engine="compute", duration=-1.0)


def test_busy_time_and_utilization():
    tasks = make_tasks([
        ("a", "compute", 1.0, []),
        ("b", "h2d", 3.0, []),
        ("c", "compute", 1.0, [1]),
    ])
    tl = schedule(tasks)
    assert tl.busy_time("compute") == 2.0
    assert tl.busy_time("h2d") == 3.0
    assert tl.makespan == 4.0
    assert tl.utilization("compute") == pytest.approx(0.5)


def test_validate_catches_dependency_violation():
    tasks = make_tasks([("a", "compute", 2.0, []), ("b", "compute", 1.0, [0])])
    tl = schedule(tasks)
    tl.tasks[1].start = 0.5  # corrupt
    with pytest.raises(DeviceError, match="dependency"):
        tl.validate()


def test_validate_catches_engine_overlap():
    tasks = make_tasks([("a", "compute", 2.0, []), ("b", "compute", 2.0, [])])
    tl = schedule(tasks)
    tl.tasks[1].start = 1.0
    with pytest.raises(DeviceError, match="overlap"):
        tl.validate()


def test_pipeline_overlaps_copies_with_compute():
    """Double-buffered pattern: H2D of batch i+1 overlaps kernel of batch i."""
    specs = []
    for i in range(4):
        copy_dep = []
        specs.append((f"h2d{i}", "h2d", 1.0, copy_dep))
    # kernels depend on their copy
    for i in range(4):
        specs.append((f"k{i}", "compute", 1.0, [i]))
    tl = schedule(make_tasks(specs))
    # copies stream back-to-back; kernels trail one step behind
    assert tl.makespan == pytest.approx(5.0)
    assert tl.overlap_fraction() > 0.5
