"""Tests for ELL bundle persistence and DD DOT export."""

import numpy as np
import pytest

from repro.circuit import random_batch
from repro.circuit.gates import Gate
from repro.circuit.generators import make_circuit
from repro.dd import (
    DDManager,
    basis_vector_dd,
    gate_matrix_dd,
    matrix_to_dot,
    vector_to_dot,
    ZERO_EDGE,
)
from repro.ell import (
    EllBundle,
    bundle_from_plan,
    ell_from_dd_cpu,
    load_bundle,
    save_bundle,
)
from repro.errors import ConversionError
from repro.fusion import bqcs_fusion
from repro.sim.statevector import simulate_batch


@pytest.fixture
def bundle():
    circuit = make_circuit("vqe", 6)
    mgr = DDManager(6)
    plan = bqcs_fusion(mgr, circuit)
    ells = [ell_from_dd_cpu(fg.dd, 6) for fg in plan.gates]
    return circuit, bundle_from_plan(circuit.name, 6, ells)


def test_bundle_roundtrip(tmp_path, bundle):
    circuit, original = bundle
    path = tmp_path / "plan.npz"
    save_bundle(original, path)
    loaded = load_bundle(path)
    assert loaded.circuit_name == circuit.name
    assert loaded.num_qubits == 6
    assert len(loaded) == len(original)
    for a, b in zip(loaded.matrices, original.matrices):
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.cols, b.cols)


def test_loaded_bundle_simulates_correctly(tmp_path, bundle):
    circuit, original = bundle
    path = tmp_path / "plan.npz"
    save_bundle(original, path)
    loaded = load_bundle(path)
    batch = random_batch(6, 4, rng=2)
    got = loaded.apply(batch.states)
    want = simulate_batch(circuit, batch)
    assert np.allclose(got, want, atol=1e-8)
    assert loaded.total_cost == original.total_cost


def test_bundle_version_check(tmp_path, bundle):
    _, original = bundle
    path = tmp_path / "plan.npz"
    save_bundle(original, path)
    data = dict(np.load(path, allow_pickle=False))
    data["format_version"] = np.array(99)
    np.savez_compressed(path, **data)
    with pytest.raises(ConversionError, match="format 99"):
        load_bundle(path)


def test_bundle_missing_array(tmp_path, bundle):
    _, original = bundle
    path = tmp_path / "plan.npz"
    save_bundle(original, path)
    data = dict(np.load(path, allow_pickle=False))
    del data["values_0"]
    np.savez_compressed(path, **data)
    with pytest.raises(ConversionError, match="missing"):
        load_bundle(path)


def test_matrix_dot_export(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("cx", [0, 1]))
    dot = matrix_to_dot(edge)
    assert dot.startswith("digraph DD")
    assert "terminal" in dot and "q3" in dot
    assert dot.count("->") >= 4
    # zero edges are omitted: slot labels are two bits
    assert '"00"' in dot or "00" in dot


def test_vector_dot_export(mgr4):
    edge = basis_vector_dd(mgr4, 5)
    dot = vector_to_dot(edge)
    assert "digraph" in dot and "q0" in dot and "q3" in dot


def test_dot_of_zero_edge():
    dot = matrix_to_dot(ZERO_EDGE)
    assert dot.startswith("digraph DD") and dot.endswith("}")
