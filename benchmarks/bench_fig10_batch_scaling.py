"""Figure 10 — speed-up over cuQuantum vs batch size."""

from conftest import run_once
from repro.bench.experiments import fig10


def test_fig10_batch_scaling(benchmark, scale):
    rows = run_once(benchmark, fig10.run, scale)
    by_circuit = {}
    for r in rows:
        by_circuit.setdefault((r["family"], r["num_qubits"]), []).append(r)
    for series in by_circuit.values():
        series.sort(key=lambda r: r["batch_size"])
        # speed-up grows with batch size and eventually saturates
        assert series[-1]["speedup"] > series[0]["speedup"]
        if scale in ("medium", "paper"):
            assert all(r["speedup"] > 1 for r in series)
            gain_early = series[1]["speedup"] - series[0]["speedup"]
            gain_late = series[-1]["speedup"] - series[-2]["speedup"]
            assert gain_late < max(gain_early, 1e-9) + 0.2
