"""Tests for the CSR/COO alternatives and the format ablation."""

import numpy as np
import pytest

from repro.circuit.generators import random_circuit, supremacy, vqe
from repro.dd import DDManager, circuit_matrix_dd, matrix_to_dense
from repro.ell import (
    coo_from_ell,
    coo_spmm,
    csr_from_ell,
    csr_spmm,
    ell_from_dd_cpu,
)
from repro.ell.alternatives import (
    COOMatrix,
    CSRMatrix,
    coo_kernel_time,
    csr_kernel_time,
    ell_kernel_time,
)
from repro.errors import ConversionError, SimulationError
from repro.gpu.spec import GpuSpec


@pytest.fixture
def gate_ell(mgr4):
    circuit = random_circuit(4, 15, seed=21)
    edge = circuit_matrix_dd(mgr4, circuit.gates)
    return edge, ell_from_dd_cpu(edge, 4)


def test_csr_roundtrip(gate_ell):
    edge, ell = gate_ell
    csr = csr_from_ell(ell)
    assert np.allclose(csr.to_dense(), matrix_to_dense(edge, 4), atol=1e-10)
    assert csr.nnz == int((ell.values != 0).sum())
    assert csr.nbytes > 0


def test_coo_roundtrip(gate_ell):
    edge, ell = gate_ell
    coo = coo_from_ell(ell)
    assert np.allclose(coo.to_dense(), matrix_to_dense(edge, 4), atol=1e-10)
    assert coo.nnz == int((ell.values != 0).sum())


def test_all_spmm_kernels_agree(gate_ell, rng):
    edge, ell = gate_ell
    states = rng.standard_normal((16, 5)) + 1j * rng.standard_normal((16, 5))
    dense = matrix_to_dense(edge, 4) @ states
    from repro.ell import ell_spmm

    assert np.allclose(ell_spmm(ell, states), dense, atol=1e-9)
    assert np.allclose(csr_spmm(csr_from_ell(ell), states), dense, atol=1e-9)
    assert np.allclose(coo_spmm(coo_from_ell(ell), states), dense, atol=1e-9)


def test_csr_validation():
    with pytest.raises(ConversionError, match="indptr"):
        CSRMatrix(2, np.zeros(3, dtype=np.int64), np.zeros(1, dtype=np.int64),
                  np.zeros(1, dtype=np.complex128))


def test_coo_validation():
    with pytest.raises(ConversionError, match="equal length"):
        COOMatrix(1, np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.int64),
                  np.zeros(2, dtype=np.complex128))


def test_spmm_dimension_checks(gate_ell):
    _, ell = gate_ell
    with pytest.raises(SimulationError):
        csr_spmm(csr_from_ell(ell), np.zeros((8, 2), dtype=complex))
    with pytest.raises(SimulationError):
        coo_spmm(coo_from_ell(ell), np.zeros((8, 2), dtype=complex))


def test_uniform_rows_make_csr_equal_ell():
    """With CV(NZR) = 0 the CSR imbalance penalty vanishes (the paper's
    argument for ELL is that it never loses on quantum gate matrices)."""
    spec = GpuSpec()
    uniform = np.full(1 << 10, 2, dtype=np.int64)
    t_csr = csr_kernel_time(spec, 10, 64, uniform)
    t_ell = ell_kernel_time(spec, 10, 64, 2)
    assert t_csr == pytest.approx(t_ell, rel=0.05)


def test_skewed_rows_penalize_csr():
    spec = GpuSpec()
    skewed = np.ones(1 << 10, dtype=np.int64)
    skewed[0] = 8
    assert csr_kernel_time(spec, 10, 64, skewed) > ell_kernel_time(spec, 10, 64, 1)


def test_coo_always_slower_than_ell(gate_ell):
    _, ell = gate_ell
    spec = GpuSpec()
    coo = coo_from_ell(ell)
    assert coo_kernel_time(spec, 4, 64, coo.nnz) > 0


def test_format_ablation_experiment():
    from repro.bench.experiments import ablation_formats

    rows = ablation_formats.run("small", batch_size=64)
    for row in rows:
        # ELL never loses; COO's atomic scatters always lose
        assert row["csr_vs_ell"] >= 1.0 - 1e-9
        assert row["coo_vs_ell"] > 1.0
    # the supremacy circuit's non-uniform rows penalize CSR specifically
    by_family = {r["family"]: r for r in rows}
    assert by_family["supremacy"]["csr_vs_ell"] > by_family["vqe"]["csr_vs_ell"]
