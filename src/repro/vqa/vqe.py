"""A VQE driver over the reproduction's simulators.

Classic variational loop with an SPSA-style stochastic optimizer: each
iteration evaluates a *population* of perturbed parameter vectors, and
every candidate circuit is simulated from ``|0...0>`` (optionally over an
input batch).  The energy landscape evaluation is exactly the
batch-of-configurations workload of the paper's related work [29].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..circuit.inputs import zero_state_batch
from ..errors import SimulationError
from ..sim.statevector import simulate_state
from .ansatz import Ansatz
from .hamiltonians import PauliSum


@dataclass
class VQEResult:
    """Optimization trace and the best point found."""

    energy: float
    parameters: np.ndarray
    history: list[float] = field(default_factory=list)
    evaluations: int = 0

    def improvement(self) -> float:
        if not self.history:
            return 0.0
        return self.history[0] - self.energy


def energy_of(
    ansatz: Ansatz, hamiltonian: PauliSum, parameters: Sequence[float]
) -> float:
    """Single-point energy: ``<0..0| U(p)^dag H U(p) |0..0>``."""
    state = simulate_state(ansatz.bind(parameters))
    return float(hamiltonian.expectation(state.reshape(-1, 1))[0])


def energy_batch(
    ansatz: Ansatz, hamiltonian: PauliSum, candidates: np.ndarray
) -> np.ndarray:
    """Energies of many parameter vectors (rows of ``candidates``)."""
    return np.array(
        [energy_of(ansatz, hamiltonian, row) for row in candidates]
    )


def run_vqe(
    ansatz: Ansatz,
    hamiltonian: PauliSum,
    iterations: int = 60,
    seed: int = 0,
    initial: Sequence[float] | None = None,
    step: float = 0.4,
    perturbation: float = 0.15,
    callback: Callable[[int, float], None] | None = None,
) -> VQEResult:
    """SPSA minimization of the ansatz energy.

    Each iteration draws a random +-1 perturbation direction, evaluates the
    two shifted candidates, and steps along the estimated gradient with a
    decaying schedule.  Deterministic for a fixed seed.
    """
    if ansatz.num_qubits != hamiltonian.num_qubits:
        raise SimulationError("ansatz/hamiltonian width mismatch")
    rng = np.random.default_rng(seed)
    theta = (
        np.asarray(initial, dtype=float).copy()
        if initial is not None
        else ansatz.random_parameters(rng)
    )
    best_theta = theta.copy()
    best_energy = energy_of(ansatz, hamiltonian, theta)
    history = [best_energy]
    evaluations = 1
    for k in range(iterations):
        a_k = step / (k + 1) ** 0.602
        c_k = perturbation / (k + 1) ** 0.101
        delta = rng.choice((-1.0, 1.0), size=theta.shape)
        plus, minus = energy_batch(
            ansatz, hamiltonian, np.stack([theta + c_k * delta, theta - c_k * delta])
        )
        evaluations += 2
        gradient = (plus - minus) / (2 * c_k) * delta
        theta = theta - a_k * gradient
        energy = energy_of(ansatz, hamiltonian, theta)
        evaluations += 1
        history.append(energy)
        if energy < best_energy:
            best_energy, best_theta = energy, theta.copy()
        if callback:
            callback(k, energy)
    return VQEResult(
        energy=best_energy,
        parameters=best_theta,
        history=history,
        evaluations=evaluations,
    )


def run_rotosolve(
    ansatz: Ansatz,
    hamiltonian: PauliSum,
    sweeps: int = 3,
    seed: int = 0,
    initial: Sequence[float] | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> VQEResult:
    """Rotosolve: exact sequential minimization over each rotation angle.

    For a single RY/RZ parameter the energy is ``a + b cos(theta - phi)``,
    so three evaluations pin the sinusoid and the optimal angle in closed
    form.  Deterministic given the seed; converges in a few sweeps on
    hardware-efficient ansaetze.
    """
    if ansatz.num_qubits != hamiltonian.num_qubits:
        raise SimulationError("ansatz/hamiltonian width mismatch")
    rng = np.random.default_rng(seed)
    theta = (
        np.asarray(initial, dtype=float).copy()
        if initial is not None
        else ansatz.random_parameters(rng)
    )
    evaluations = 0

    def f(vec: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        return energy_of(ansatz, hamiltonian, vec)

    history = [f(theta)]
    for sweep in range(sweeps):
        for d in range(theta.shape[0]):
            base = theta[d]
            here = f(theta)
            theta[d] = base + np.pi / 2
            plus = f(theta)
            theta[d] = base - np.pi / 2
            minus = f(theta)
            shift = -np.pi / 2 - np.arctan2(2 * here - plus - minus, plus - minus)
            theta[d] = base + shift
            # wrap into (-pi, pi] for numerical hygiene
            theta[d] = (theta[d] + np.pi) % (2 * np.pi) - np.pi
        energy = f(theta)
        history.append(energy)
        if callback:
            callback(sweep, energy)
    return VQEResult(
        energy=history[-1],
        parameters=theta,
        history=history,
        evaluations=evaluations,
    )


def landscape(
    ansatz: Ansatz,
    hamiltonian: PauliSum,
    num_samples: int,
    seed: int = 0,
) -> np.ndarray:
    """Random-sample the energy landscape (a pure batch workload)."""
    rng = np.random.default_rng(seed)
    candidates = np.stack([ansatz.random_parameters(rng) for _ in range(num_samples)])
    return energy_batch(ansatz, hamiltonian, candidates)
