"""Table 3 — #MAC after gate fusion (exact analytic quantity).

For each circuit, builds the four fusion plans (none/dense, Aer array-based,
FlatDD greedy, BQCS-aware) and reports #MAC per input next to the paper's
values.  This table needs no hardware model at all: #MAC is a property of
the plans, so at medium/paper scale it is an exact reproduction target.
"""

from __future__ import annotations

from ...dd.manager import DDManager
from ...fusion.array_fusion import aer_fusion, cuquantum_plan
from ...fusion.bqcs import bqcs_fusion
from ...fusion.greedy import flatdd_fusion
from ..tables import geomean, print_table
from ..workloads import PAPER_TABLE3_COST, suite

PLANNERS = (
    ("cuquantum", cuquantum_plan),
    ("qiskit-aer", aer_fusion),
    ("flatdd", flatdd_fusion),
    ("bqsim", bqcs_fusion),
)

#: planner runs skipped at paper scale: DD-based fusion on the large QNNs
#: takes hours of host time in pure Python (the paper's own FlatDD runs on
#: these circuits exceeded 24 h; its C++ BQSim fusion takes seconds)
PAPER_SKIP = {
    ("qnn", 19, "flatdd"), ("qnn", 21, "flatdd"),
    ("qnn", 19, "bqsim"), ("qnn", 21, "bqsim"),
}


def run(scale: str = "small") -> list[dict]:
    workloads, _, _ = suite(scale)
    rows = []
    for workload in workloads:
        circuit = workload.build()
        mgr = DDManager(circuit.num_qubits)
        row = {
            "family": workload.family,
            "num_qubits": workload.num_qubits,
            "num_gates": len(circuit),
            "paper_cost": PAPER_TABLE3_COST.get(workload.key),
        }
        for name, planner in PLANNERS:
            key = (workload.family, workload.num_qubits, name)
            if scale == "paper" and key in PAPER_SKIP:
                row[f"{name}_cost"] = None
                row[f"{name}_macs"] = None
                continue
            plan = planner(mgr, circuit)
            row[f"{name}_cost"] = plan.total_cost  # #MAC per amplitude
            row[f"{name}_macs"] = plan.macs_per_input()
        bq = row["bqsim_cost"]
        for name, _ in PLANNERS[:-1]:
            cost = row[f"{name}_cost"]
            row[f"improve_{name}"] = (
                cost / bq if cost is not None and bq is not None and bq else float("nan")
            )
        rows.append(row)
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    table = []
    for r in rows:
        paper = r["paper_cost"]
        table.append(
            [
                r["family"],
                r["num_qubits"],
                r["num_gates"],
                r["cuquantum_cost"],
                r["qiskit-aer_cost"],
                "-" if r["flatdd_cost"] is None else r["flatdd_cost"],
                "-" if r["bqsim_cost"] is None else r["bqsim_cost"],
                "-" if r["bqsim_cost"] is None else f"{r['improve_cuquantum']:.2f}x",
                "-" if r["bqsim_cost"] is None else f"{r['improve_qiskit-aer']:.2f}x",
                "-"
                if r["flatdd_cost"] is None or r["bqsim_cost"] is None
                else f"{r['improve_flatdd']:.2f}x",
                "/".join(str(v) for v in paper) if paper else "-",
            ]
        )
    print_table(
        f"Table 3: #MAC per amplitude after fusion (scale={scale})",
        [
            "circuit", "n", "#gates", "cuQuantum", "Qiskit Aer", "FlatDD",
            "BQSim", "vs cuQ", "vs Aer", "vs FlatDD", "paper (cuQ/Aer/FDD/BQ)",
        ],
        table,
    )
    print(
        "geomean improvements: "
        f"vs cuQuantum {geomean([r['improve_cuquantum'] for r in rows]):.2f}x, "
        f"vs Qiskit Aer {geomean([r['improve_qiskit-aer'] for r in rows]):.2f}x, "
        f"vs FlatDD {geomean([r['improve_flatdd'] for r in rows]):.2f}x "
        "(paper: 10.76x / 3.85x / 1.23x)"
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
