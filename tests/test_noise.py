"""Tests for the noise substrate (channels, density matrix, trajectories)."""

import numpy as np
import pytest

from repro.circuit import Circuit, zero_state_batch
from repro.circuit.generators import ghz
from repro.errors import SimulationError
from repro.noise import (
    NoiseChannel,
    NoiseModel,
    amplitude_damping,
    bit_flip,
    density_probabilities,
    depolarizing,
    phase_flip,
    purity,
    sample_trajectory,
    simulate_density,
    simulate_noisy_batch,
    state_fidelity_with_density,
)
from repro.sim.statevector import simulate_state


def test_channels_are_trace_preserving():
    for channel in (depolarizing(0.1), bit_flip(0.2), phase_flip(0.3),
                    amplitude_damping(0.4)):
        total = sum(k.conj().T @ k for k in channel.kraus)
        assert np.allclose(total, np.eye(2), atol=1e-12)


def test_channel_validation_rejects_non_cptp():
    with pytest.raises(SimulationError, match="trace preserving"):
        NoiseChannel("broken", (np.eye(2) * 0.5,))
    with pytest.raises(SimulationError, match="probability"):
        depolarizing(1.5)


def test_pauli_decomposition():
    probs = depolarizing(0.3).pauli_probabilities()
    assert probs["I"] == pytest.approx(0.7)
    for label in "XYZ":
        assert probs[label] == pytest.approx(0.1)
    assert bit_flip(0.2).pauli_probabilities()["X"] == pytest.approx(0.2)
    assert amplitude_damping(0.2).pauli_probabilities() is None


def test_noiseless_density_matches_pure_state():
    circuit = ghz(4)
    rho = simulate_density(circuit)
    state = simulate_state(circuit)
    assert np.allclose(rho, np.outer(state, state.conj()), atol=1e-10)
    assert purity(rho) == pytest.approx(1.0)


def test_depolarizing_reduces_purity_and_fidelity():
    circuit = ghz(3)
    ideal = simulate_state(circuit)
    rho = simulate_density(circuit, NoiseModel(depolarizing(0.1)))
    assert purity(rho) < 0.95
    fid = state_fidelity_with_density(ideal, rho)
    assert 0.3 < fid < 0.95
    assert np.trace(rho).real == pytest.approx(1.0)


def test_bit_flip_on_idle_basis_state():
    circuit = Circuit(1)
    circuit.x(0)
    rho = simulate_density(circuit, NoiseModel(bit_flip(0.25)))
    probs = density_probabilities(rho)
    # X then 25% flip back
    assert probs[1] == pytest.approx(0.75)
    assert probs[0] == pytest.approx(0.25)


def test_density_width_limit():
    with pytest.raises(SimulationError, match="limited"):
        simulate_density(ghz(9))


def test_sample_trajectory_injects_paulis():
    circuit = ghz(3)
    rng = np.random.default_rng(0)
    noise = NoiseModel(depolarizing(0.9))  # errors almost surely
    trajectory = sample_trajectory(circuit, noise, rng)
    assert len(trajectory) > len(circuit)
    extra = trajectory.gates[len(circuit):]
    # injected gates are single-qubit Paulis
    names = {g.name for g in trajectory.gates} - {g.name for g in circuit.gates}
    assert names <= {"x", "y", "z"}


def test_sample_trajectory_rejects_non_pauli():
    rng = np.random.default_rng(0)
    with pytest.raises(SimulationError, match="not a Pauli channel"):
        sample_trajectory(ghz(2), NoiseModel(amplitude_damping(0.1)), rng)


def test_trajectory_average_converges_to_density():
    circuit = ghz(3)
    noise = NoiseModel(depolarizing(0.08))
    exact = density_probabilities(simulate_density(circuit, noise))
    batch = zero_state_batch(3, 1)
    estimate = simulate_noisy_batch(circuit, noise, batch, num_trajectories=300, seed=3)
    assert np.abs(estimate.probabilities[:, 0] - exact).max() < 0.07
    assert estimate.avg_injected_errors > 0


def test_zero_noise_trajectories_are_exact():
    circuit = ghz(3)
    noise = NoiseModel(depolarizing(0.0))
    batch = zero_state_batch(3, 2)
    estimate = simulate_noisy_batch(circuit, noise, batch, num_trajectories=3)
    ideal = np.abs(simulate_state(circuit)) ** 2
    assert np.allclose(estimate.probabilities[:, 0], ideal, atol=1e-10)
    assert estimate.avg_injected_errors == 0


def test_trajectory_count_validation():
    with pytest.raises(SimulationError, match="at least one"):
        simulate_noisy_batch(
            ghz(2), NoiseModel(depolarizing(0.1)), zero_state_batch(2, 1),
            num_trajectories=0,
        )
