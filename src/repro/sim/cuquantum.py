"""cuQuantum-like baseline: gate-level *dense* batched applies.

Models ``custatevecApplyMatrixBatched`` applied gate by gate (the only BQCS
path cuQuantum offers): no fusion, one dense kernel per gate per batch,
synchronous launches, no copy/compute overlap.  Every gate is padded to at
least two qubits by the batched API, so it costs 4 MACs per amplitude
(Table 3) and streams the state block twice (in-register butterfly).

``plan_provider`` swaps in a fusion plan for the Table 4 variants:
cuQuantum+B (BQSim's fusion) and cuQuantum+Q (Aer's fusion).  Fused gates
still go through the dense API, so a fused gate spanning ``k`` qubits costs
``2^k`` MACs per amplitude and needs a ``4^k``-entry dense matrix on the
device — which runs out of memory for wide fusions, reproducing the failed
runs ("-") in Table 4.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Sequence

import numpy as np

from ..circuit import Circuit, InputBatch
from ..dd.manager import DDManager
from ..ell.convert import ell_from_dd_cpu
from ..ell.spmm import default_backend
from ..fusion.array_fusion import cuquantum_plan
from ..fusion.plan import FusionPlan
from ..gpu.device import VirtualGPU
from ..gpu.power import PowerReport, cpu_power_from_utilization, gpu_power_from_work
from ..gpu.spec import (
    COMPLEX_BYTES,
    CpuSpec,
    GpuSpec,
    dense_kernel_bytes,
    state_block_bytes,
)
from ..kernels.engine import ArrayEngine, get_engine
from ..obs import CANONICAL_STAGES
from ..profile import StageTimer
from ..resilience import (
    BackendLadder,
    FaultPlan,
    HealthPolicy,
    RetryPolicy,
    check_state_block,
    fault_injection,
)
from .base import (
    BatchSimulator,
    BatchSpec,
    PlanCache,
    RunObservation,
    SimulationResult,
)

PlanProvider = Callable[[DDManager, Circuit], FusionPlan]


class CuQuantumSimulator(BatchSimulator):
    """Dense gate-level batched simulation (cuQuantum model).

    The paper's strongest GPU baseline: every gate is applied as a dense
    batched matrix multiply with no fusion, so it pays one kernel launch
    and one full state sweep per gate.  Amplitudes are exact (NumPy);
    time and power come from the calibrated device model.  Example::

        result = CuQuantumSimulator().run(make_circuit("ghz", 4), BatchSpec(1, 8))
        assert result.outputs[0].shape == (16, 8)
    """

    name = "cuquantum"

    def __init__(
        self,
        gpu: GpuSpec | None = None,
        cpu: CpuSpec | None = None,
        plan_provider: PlanProvider | None = None,
        variant_name: str | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | str | None = None,
        health: HealthPolicy | str | None = "warn",
        engine: "str | ArrayEngine | None" = None,
    ):
        self.gpu = gpu or GpuSpec()
        self.cpu = cpu or CpuSpec()
        self.plan_provider = plan_provider or cuquantum_plan
        if variant_name:
            self.name = variant_name
        self._plans = PlanCache()
        self.retry = retry
        self.faults = faults
        self.health = HealthPolicy.coerce(health)
        self.engine = engine

    def _gate_support(self, circuit: Circuit, indices: Sequence[int]) -> int:
        qubits: set[int] = set()
        for i in indices:
            qubits.update(circuit.gates[i].all_qubits)
        return len(qubits)

    def run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None = None,
        execute: bool = True,
    ) -> SimulationResult:
        with fault_injection(self.faults):
            return self._run(circuit, spec, batches, execute)

    def _run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None,
        execute: bool,
    ) -> SimulationResult:
        wall_start = time.perf_counter()
        n = circuit.num_qubits
        eng = get_engine(self.engine)
        obs = RunObservation()
        timer = StageTimer(stages=CANONICAL_STAGES)

        def build():
            mgr = DDManager(n)
            built_plan = self.plan_provider(mgr, circuit)
            return {"mgr": mgr, "plan": built_plan, "ells": None}

        # distinct providers (cuQuantum+B / cuQuantum+Q) produce distinct
        # plans for the same circuit, so the provider is part of the key
        provider_tag = getattr(
            self.plan_provider, "__name__", repr(self.plan_provider)
        )
        with obs.tracer.span(
            f"{self.name}.run",
            simulator=self.name,
            circuit=circuit.name,
            num_qubits=n,
            num_batches=spec.num_batches,
            batch_size=spec.batch_size,
            execute=execute,
        ):
            with timer.time("fusion") as span:
                prepared = self._plans.get(
                    circuit, build, extra=("cuquantum-v1", provider_tag)
                )
                span.set(fused_gates=len(prepared["plan"].gates))
            plan = prepared["plan"]

            # dense-matrix memory footprint of every (fused) gate on the device
            supports = [
                max(2, self._gate_support(circuit, fg.gate_indices))
                for fg in plan.gates
            ]
            matrix_bytes = sum((1 << (2 * k)) * COMPLEX_BYTES for k in supports)
            block = state_block_bytes(n, spec.batch_size)
            if matrix_bytes + block > self.gpu.memory_bytes:
                return SimulationResult(
                    simulator=self.name,
                    circuit_name=circuit.name,
                    num_qubits=n,
                    spec=spec,
                    modeled_time=math.inf,
                    wall_time=time.perf_counter() - wall_start,
                    stats=obs.finalize(
                        {
                            "engine": eng.name,
                            "failed": "dense fused gates exceed device memory",
                            "matrix_bytes": matrix_bytes,
                            "plan": plan,
                        },
                        timer,
                        self._plans,
                    ),
                )

            with timer.time("io"):
                batches = self._resolve_batches(circuit, spec, batches, execute)
            ells = None
            if execute:
                with timer.time("convert"):
                    if prepared["ells"] is None:
                        prepared["ells"] = [
                            ell_from_dd_cpu(fg.dd, n) for fg in plan.gates
                        ]
                    ells = prepared["ells"]
                    # warm the gather plans outside the timed kernel bodies
                    for ell in ells:
                        ell.plan()

            with timer.time("execute") as span:
                device = VirtualGPU(
                    self.gpu,
                    mode="stream",
                    retry=self.retry,
                    seed=spec.seed,
                    engine=eng,
                )
                ladder = BackendLadder() if execute else None
                rows = 1 << n
                total_macs = 0.0
                total_bytes = 0.0
                outputs: list[np.ndarray] | None = [] if execute else None
                buffer = device.alloc("state", block) if execute else None
                prev = None
                for ib in range(spec.num_batches):
                    if execute:
                        prev = device.h2d(
                            buffer, batches[ib].states, deps=[prev] if prev else []
                        )
                    else:
                        prev = device.raw_task(
                            f"h2d:b{ib}", "h2d", self.gpu.copy_time(block),
                            deps=[prev] if prev else [],
                        )
                    for ik, k in enumerate(supports):
                        macs = (1 << k) * rows * spec.batch_size
                        traffic = dense_kernel_bytes(n, spec.batch_size)
                        duration = self.gpu.kernel_time(macs, traffic)
                        total_macs += macs
                        total_bytes += traffic
                        if execute:
                            ell = ells[ik]

                            # the chain runs in place on one buffer, so the
                            # body pins its input on first entry — a retried
                            # body (after an injected bit-flip) re-applies
                            # from the pinned source, never the bad output
                            def body(ell=ell, buffer=buffer, cell=[]):
                                if not cell:
                                    cell.append(buffer.require())
                                buffer.array = ladder.apply(
                                    ell, cell[0], engine=device.engine
                                )

                            prev = device.kernel(
                                f"k{ik}:b{ib}",
                                body,
                                deps=[prev],
                                duration=duration,
                                output=buffer,
                            )
                        else:
                            prev = device.raw_task(
                                f"k{ik}:b{ib}", "compute", duration, deps=[prev]
                            )
                    if execute:
                        prev, snapshot = device.d2h(buffer, deps=[prev])
                        snapshot = check_state_block(
                            snapshot, self.health,
                            label=f"{circuit.name} batch {ib}",
                        )
                        outputs.append(snapshot)
                    else:
                        prev = device.raw_task(
                            f"d2h:b{ib}", "d2h", self.gpu.copy_time(block),
                            deps=[prev],
                        )

                timeline = device.run()
                span.set(num_tasks=len(timeline.tasks))
        total = timeline.makespan
        power = PowerReport(
            gpu_watts=gpu_power_from_work(total_macs, total_bytes, total, self.gpu),
            cpu_watts=cpu_power_from_utilization(0.1, self.cpu),
        )
        return SimulationResult(
            simulator=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            spec=spec,
            modeled_time=total,
            breakdown={"simulation": total},
            power=power,
            timeline=timeline,
            outputs=outputs,
            wall_time=time.perf_counter() - wall_start,
            stats=obs.finalize(
                {
                    "engine": eng.name,
                    "plan": plan,
                    "macs": sum(
                        (1 << k) * rows * spec.num_inputs for k in supports
                    ),
                    "dense_matrix_bytes": matrix_bytes,
                },
                timer,
                self._plans,
                resilience_extra={
                    "backend": ladder.backend if ladder else default_backend(),
                    "demoted": bool(ladder.demoted) if ladder else False,
                    "task_retries": timeline.total_retries(),
                },
            ),
        )
