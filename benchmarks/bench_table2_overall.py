"""Table 2 — overall runtime of BQSim vs cuQuantum / Qiskit Aer / FlatDD."""

from conftest import run_once
from repro.bench.experiments import table2
from repro.bench.tables import geomean


def test_table2_overall_runtime(benchmark, scale):
    rows = run_once(benchmark, table2.run, scale)
    # paper averages: 3.25x / 159.06x / 331.42x; at any scale BQSim must beat
    # the two per-input simulators on geomean
    assert geomean([r["speedup_qiskit-aer"] for r in rows]) > 10
    assert geomean([r["speedup_flatdd"] for r in rows]) > 1
    if scale in ("medium", "paper"):
        # the batched-GPU comparison needs at-scale batches
        assert geomean([r["speedup_cuquantum"] for r in rows]) > 1.5
