"""Tests for the BQSim pipeline simulator."""

import numpy as np
import pytest

from repro.circuit import generate_batches
from repro.circuit.generators import make_circuit, random_circuit
from repro.sim import BQSimSimulator, BatchSpec, buffer_indices
from repro.sim.statevector import simulate_batch
from repro.errors import SimulationError


@pytest.fixture
def spec():
    return BatchSpec(num_batches=5, batch_size=8, seed=2)


def test_outputs_match_reference(spec, random_circuits):
    sim = BQSimSimulator()
    for circuit in random_circuits:
        batches = list(generate_batches(4, spec.num_batches, spec.batch_size, spec.seed))
        result = sim.run(circuit, spec, batches=batches)
        for out, batch in zip(result.outputs, batches):
            assert np.allclose(out, simulate_batch(circuit, batch), atol=1e-8)


def test_buffer_indices_formula():
    """The Figure 8 walkthrough: 2 kernels per batch (L=2)."""
    # batch 0: k0 reads D[0] writes D[1]; k1 reads D[1] writes D[0]
    assert buffer_indices(0, 0, 2) == (0, 1)
    assert buffer_indices(0, 1, 2) == (1, 0)
    # batch 1 uses the odd buffers: k0 reads D[2] writes D[3]
    assert buffer_indices(1, 0, 2) == (2, 3)
    assert buffer_indices(1, 1, 2) == (3, 2)
    # batch 2 goes back to even buffers, starting from D[1]
    assert buffer_indices(2, 0, 2) == (1, 0)


def test_buffer_indices_never_alias():
    for kernels in (1, 2, 3, 7):
        for batch in range(8):
            for k in range(kernels):
                src, dst = buffer_indices(batch, k, kernels)
                assert src != dst
                # even batches use D[0]/D[1]; odd batches D[2]/D[3]
                expected = {0, 1} if batch % 2 == 0 else {2, 3}
                assert {src, dst} == expected


def test_kernel_chain_is_connected():
    """Kernel k+1 must read the buffer kernel k wrote."""
    for kernels in (1, 2, 5):
        for batch in range(6):
            for k in range(kernels - 1):
                _, dst = buffer_indices(batch, k, kernels)
                src, _ = buffer_indices(batch, k + 1, kernels)
                assert dst == src


def test_breakdown_amortizes_with_batches(spec):
    circuit = make_circuit("vqe", 8)
    sim = BQSimSimulator()
    few = sim.run(circuit, BatchSpec(2, 8), execute=False)
    many = sim.run(circuit, BatchSpec(100, 8), execute=False)

    def overhead_fraction(result):
        one_time = result.breakdown["fusion"] + result.breakdown["conversion"]
        return one_time / result.modeled_time

    assert overhead_fraction(many) < overhead_fraction(few)
    # one-time stages are identical across runs (plan cache + determinism)
    assert few.breakdown["fusion"] == many.breakdown["fusion"]


def test_execute_false_skips_numerics(spec):
    circuit = make_circuit("vqe", 8)
    result = BQSimSimulator().run(circuit, spec, execute=False)
    assert result.outputs is None
    with pytest.raises(SimulationError, match="execute=True"):
        result.output_batch(0)
    assert result.modeled_time > 0


def test_model_time_identical_with_and_without_numerics(spec):
    circuit = make_circuit("vqe", 8)
    sim = BQSimSimulator()
    modeled = sim.run(circuit, spec, execute=False).modeled_time
    executed = sim.run(circuit, spec, execute=True).modeled_time
    assert modeled == pytest.approx(executed, rel=1e-9)


def test_ablations_run_slower_on_model(spec):
    circuit = make_circuit("vqe", 10)
    base = BQSimSimulator().run(circuit, spec, execute=False)
    sim_time = base.breakdown["simulation"]
    for kwargs in ({"fusion": False}, {"use_ell": False}, {"task_graph": False}):
        ablated = BQSimSimulator(**kwargs).run(circuit, spec, execute=False)
        assert ablated.breakdown["simulation"] > sim_time, kwargs


def test_ablations_preserve_numerics(spec, random_circuits):
    circuit = random_circuits[0]
    batches = list(generate_batches(4, spec.num_batches, spec.batch_size, spec.seed))
    reference = [simulate_batch(circuit, b) for b in batches]
    for kwargs in ({"fusion": False}, {"use_ell": False}, {"task_graph": False}):
        result = BQSimSimulator(**kwargs).run(circuit, spec, batches=batches)
        for out, ref in zip(result.outputs, reference):
            assert np.allclose(out, ref, atol=1e-8), kwargs


def test_task_graph_overlaps_copies(spec):
    circuit = make_circuit("vqe", 10)
    overlapped = BQSimSimulator().run(circuit, spec, execute=False)
    serialized = BQSimSimulator(task_graph=False).run(circuit, spec, execute=False)
    assert overlapped.stats["overlap_fraction"] > 0.1
    assert serialized.stats["overlap_fraction"] == 0.0


def test_batch_count_scales_simulation_linearly():
    """Marginal cost per batch is constant (after the fixed graph launch)."""
    circuit = make_circuit("vqe", 8)
    sim = BQSimSimulator()

    def sim_time(batches):
        return sim.run(circuit, BatchSpec(batches, 16), execute=False).breakdown[
            "simulation"
        ]

    t10, t40, t70 = sim_time(10), sim_time(40), sim_time(70)
    assert (t70 - t40) == pytest.approx(t40 - t10, rel=0.05)


def test_rejects_mismatched_batches(spec, random_circuits):
    circuit = random_circuits[0]
    wrong = list(generate_batches(4, 2, spec.batch_size, 0))
    with pytest.raises(SimulationError, match="expected"):
        BQSimSimulator().run(circuit, spec, batches=wrong)


def test_power_report_present(spec):
    circuit = make_circuit("vqe", 8)
    result = BQSimSimulator().run(circuit, spec, execute=False)
    assert result.power.gpu_watts > 0
    assert result.power.cpu_watts > 0


def test_plan_cache_reuses_fusion(spec):
    circuit = make_circuit("vqe", 8)
    sim = BQSimSimulator()
    sim.run(circuit, spec, execute=False)
    first = sim._plans._entries.copy()
    sim.run(circuit, spec, execute=False)
    assert sim._plans._entries.keys() == first.keys()


def test_device_memory_guard():
    """Four rotating buffers must fit on the device, even in model mode."""
    from repro.gpu import GpuSpec

    circuit = make_circuit("vqe", 12)
    tiny = BQSimSimulator(gpu=GpuSpec(memory_bytes=1024 * 1024))
    with pytest.raises(SimulationError, match="exceed device memory"):
        tiny.run(circuit, BatchSpec(2, 256), execute=False)


def test_snapshots_capture_every_fused_gate():
    from repro.circuit.generators import make_circuit as mk

    circuit = mk("routing", 6)
    spec = BatchSpec(2, 8, seed=1)
    result = BQSimSimulator(snapshots=True).run(circuit, spec)
    snaps = result.stats["snapshots"]
    assert len(snaps) == 2
    assert len(snaps[0]) == result.stats["fused_gates"]
    assert np.allclose(snaps[0][-1], result.outputs[0])
    # snapshots cost device time (extra D2H per kernel)
    plain = BQSimSimulator().run(circuit, spec)
    assert result.modeled_time > plain.modeled_time
