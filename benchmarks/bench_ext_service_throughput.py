"""Extension bench — batch-service coalescing vs one-job-per-run.

The serving-layer acceptance check: on a shared-structure workload (many
small jobs over the same circuit families), the coalescer packs compatible
jobs into BQCS mega-batches and beats a baseline service that is forced to
run every job alone (``max_jobs_per_batch=1``).  Larger effective batches
amortize plan transfer and fill the modeled copy/compute pipeline, which
is the core BQSim batching claim applied at the serving layer.

Asserts:

* coalescing actually happened (mean coalesce factor > 1, reported);
* coalesced modeled time beats solo modeled time (speedup > 1);
* both modes produce bit-identical amplitudes for every job.

The coalesced run's ``stats["slo"]`` block (per-priority latency and
queue-age percentiles, deadline/degradation rates) is written to
``BENCH_service_slo.json`` next to this module, so the serving layer's
SLO trajectory is machine-readable across PRs.
"""

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from conftest import run_once

from repro.circuit.generators import make_circuit
from repro.service import BatchSimulationService

#: machine-readable SLO summary of the coalesced run, refreshed per run
SLO_JSON = Path(__file__).parent / "BENCH_service_slo.json"

FAMILIES = ("qft", "ghz", "vqe")
NUM_QUBITS = 6
JOBS_PER_FAMILY = 6
INPUTS_PER_JOB = 4


def submit_workload(service: BatchSimulationService) -> list[str]:
    """The shared-structure workload: many small jobs, few distinct plans."""
    job_ids = []
    for _ in range(JOBS_PER_FAMILY):
        for family in FAMILIES:
            circuit = make_circuit(family, NUM_QUBITS)
            job = service.submit(circuit, num_inputs=INPUTS_PER_JOB)
            job_ids.append(job.job_id)
    service.drain()
    return job_ids


def service_throughput() -> dict:
    coalesced = BatchSimulationService(max_depth=64)
    solo = BatchSimulationService(max_depth=64, max_jobs_per_batch=1)
    ids_c = submit_workload(coalesced)
    ids_s = submit_workload(solo)
    for jid_c, jid_s in zip(ids_c, ids_s):
        a = coalesced.job(jid_c).result
        b = solo.job(jid_s).result
        assert a is not None and np.array_equal(a, b)
    stats_c = coalesced.stats()
    stats_s = solo.stats()
    SLO_JSON.write_text(json.dumps(
        {
            "bench": "service_throughput",
            "jobs": len(ids_c),
            "coalesce_factor_mean": stats_c["coalesce_factor_mean"],
            "speedup_vs_solo": (
                stats_s["modeled_time_s"] / stats_c["modeled_time_s"]
            ),
            "slo": stats_c["slo"],
            "slo_solo": stats_s["slo"],
        },
        indent=2,
    ) + "\n")
    return {
        "jobs": len(ids_c),
        "coalesce_factor_mean": stats_c["coalesce_factor_mean"],
        "coalesce_factor_max": stats_c["coalesce_factor_max"],
        "megabatches_coalesced": stats_c["megabatches"],
        "megabatches_solo": stats_s["megabatches"],
        "coalesced_modeled_s": stats_c["modeled_time_s"],
        "solo_modeled_s": stats_s["modeled_time_s"],
        "coalesced_inputs_per_s": stats_c["modeled_throughput_inputs_per_s"],
        "solo_inputs_per_s": stats_s["modeled_throughput_inputs_per_s"],
        "speedup": stats_s["modeled_time_s"] / stats_c["modeled_time_s"],
    }


def test_service_coalescing_beats_solo(benchmark, scale):
    row = run_once(benchmark, service_throughput)
    assert row["coalesce_factor_mean"] > 1
    assert row["megabatches_coalesced"] < row["megabatches_solo"]
    assert row["speedup"] > 1.0, row


# ---------------------------------------------------------------------------
# workers sweep: wall-clock scaling of the process pool
# ---------------------------------------------------------------------------

SWEEP_FAMILIES = ("qft", "ghz", "vqe", "qaoa")  # four distinct plans
SWEEP_QUBITS = 11
SWEEP_JOBS_PER_FAMILY = 8
SWEEP_INPUTS_PER_JOB = 64


def _timed_pool_run(workers: int, cache_dir: str) -> float:
    """Wall-clock seconds to drain the 4-plan workload on ``workers``
    pool processes.

    The shared plan cache is pre-warmed (one tiny job per family) before
    the clock starts, so the measurement isolates *execution* scaling —
    exactly what the pool parallelizes — from one-time plan compilation,
    which the compile-once disk tier amortizes across every worker and
    every run anyway.
    """
    service = BatchSimulationService(
        num_workers=workers,
        parallelism="process",
        max_depth=4 * SWEEP_JOBS_PER_FAMILY + len(SWEEP_FAMILIES),
        simulator_kwargs={"cache_dir": cache_dir},
    )
    try:
        circuits = {
            family: make_circuit(family, SWEEP_QUBITS)
            for family in SWEEP_FAMILIES
        }
        for circuit in circuits.values():  # warm pool + shared plan cache
            service.submit(circuit, num_inputs=1)
        service.drain()
        start = time.perf_counter()
        for family in SWEEP_FAMILIES:
            for _ in range(SWEEP_JOBS_PER_FAMILY):
                service.submit(
                    circuits[family], num_inputs=SWEEP_INPUTS_PER_JOB
                )
        service.drain()
        elapsed = time.perf_counter() - start
        stats = service.stats()
        assert stats["failed"] == 0, stats
    finally:
        service.close()
    return elapsed


def workers_sweep() -> dict:
    """Drain the same 4-plan workload at 1, 2, and 4 pool workers."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-plans-") as cache:
        walls = {w: _timed_pool_run(w, cache) for w in (1, 2, 4)}
    return {
        "wall_1_worker_s": walls[1],
        "wall_2_workers_s": walls[2],
        "wall_4_workers_s": walls[4],
        "speedup_2_workers": walls[1] / walls[2],
        "speedup_4_workers": walls[1] / walls[4],
    }


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="workers sweep needs >= 4 CPUs to demonstrate scaling",
)
def test_process_pool_scales_with_workers(benchmark, scale):
    row = run_once(benchmark, workers_sweep)
    assert row["speedup_4_workers"] > 1.8, row
