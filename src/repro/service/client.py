"""Synchronous client API and the scripted saturation workload.

:class:`ServiceClient` is the friendly face of the serving layer: it owns
(or wraps) a :class:`~repro.service.workers.BatchSimulationService` and
exposes the two calls an application needs — :meth:`ServiceClient.submit`
returns a job id immediately, :meth:`ServiceClient.result` drives the
service until that job is terminal and returns its amplitudes.  Because
the service is in-process and synchronous, "waiting" means stepping the
dispatch loop; the scheduling order is still the fair scheduler's, so a
low-priority job's ``result()`` call may well execute other jobs first.

:func:`saturation_workload` is the scripted load generator behind ``repro
serve``: a seeded stream of mixed-priority, mixed-size, partly
deadline-carrying jobs over several circuit families, submitted faster
than they drain so admission control, aging, and coalescing all engage.
"""

from __future__ import annotations

import numpy as np

from ..circuit import Circuit, InputBatch
from ..circuit.generators import make_circuit
from ..errors import AdmissionError, ServiceError
from .jobs import Job, JobStatus
from .workers import BatchSimulationService


class ServiceClient:
    """Blocking submit/result API over an in-process service.

    Owns a fresh :class:`BatchSimulationService` built from
    ``service_kwargs`` (or wraps one passed in).  Typical use::

        with ServiceClient(num_workers=2) as client:
            job_id = client.submit(make_circuit("qft", 5), num_inputs=8)
            amplitudes = client.result(job_id)  # (32, 8) complex matrix
    """

    def __init__(
        self, service: BatchSimulationService | None = None, **service_kwargs
    ) -> None:
        self.service = service or BatchSimulationService(**service_kwargs)

    def close(self) -> None:
        """Release the service's execution resources (process pool)."""
        self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def submit(
        self,
        circuit: Circuit,
        batch: InputBatch | None = None,
        *,
        num_inputs: int = 1,
        priority: int = 0,
        deadline: float | None = None,
        timeout_s: float | None = None,
        max_deliveries: int | None = None,
        options: tuple = (),
        fidelity: float = 1.0,
    ) -> str:
        """Enqueue a job and return its durable id (non-blocking).

        ``timeout_s`` bounds execution once dispatched (process mode: a
        hung worker is killed and the job fails with timeout evidence);
        ``max_deliveries`` overrides the service's redelivery budget;
        ``fidelity`` is the end-to-end fidelity budget in ``(0, 1]``
        (1.0 = exact tier, see docs/approximation.md).
        """
        job = self.service.submit(
            circuit, batch,
            num_inputs=num_inputs, priority=priority,
            deadline=deadline, timeout_s=timeout_s,
            max_deliveries=max_deliveries, options=options,
            fidelity=fidelity,
        )
        return job.job_id

    def status(self, job_id: str) -> JobStatus:
        return self.service.job(job_id).status

    def wait(self, job_id: str, max_rounds: int = 10_000) -> Job:
        """Drive dispatch rounds until the job is terminal; returns it."""
        job = self.service.job(job_id)
        rounds = 0
        while not job.is_terminal:
            if rounds >= max_rounds:
                raise ServiceError(
                    f"job {job_id} still {job.status.value} after "
                    f"{max_rounds} dispatch rounds"
                )
            if self.service.step() == 0 and not job.is_terminal:
                raise ServiceError(
                    f"service idle but job {job_id} is {job.status.value}"
                )
            rounds += 1
        return job

    def result(self, job_id: str) -> np.ndarray:
        """Block (drive the service) until done; the job's amplitudes.

        Raises :class:`ServiceError` when the job failed or was cancelled,
        carrying the per-job error message.
        """
        job = self.wait(job_id)
        if job.status is JobStatus.DONE:
            return job.result
        raise ServiceError(
            f"job {job_id} finished {job.status.value}"
            + (f": {job.error}" if job.error else "")
        )

    def cancel(self, job_id: str) -> Job:
        """Cancel a job (see :meth:`BatchSimulationService.cancel`).

        Queued jobs return CANCELLED immediately; an in-flight job comes
        back still RUNNING with ``cancel_requested`` set and transitions
        to CANCELLED when its mega-batch lands — no
        :class:`~repro.errors.JobNotCancellable` leaks to callers of this
        wrapper (going straight at :meth:`JobQueue.cancel` does raise
        it).  Unknown or already-terminal ids raise
        :class:`~repro.errors.ServiceError`.
        """
        return self.service.cancel(job_id)

    def stats(self) -> dict:
        return self.service.stats()


def saturation_workload(
    service: BatchSimulationService,
    families: list[str],
    num_qubits: int = 6,
    num_jobs: int = 24,
    seed: int = 0,
    max_inputs: int = 16,
    deadline_fraction: float = 0.2,
    submit_burst: int = 4,
) -> dict:
    """Scripted saturation: seeded mixed-priority load against a service.

    Submits ``num_jobs`` jobs in bursts of ``submit_burst`` — random family,
    random batch size in ``[1, max_inputs]``, priority in ``0..3``, and a
    ``deadline_fraction`` slice carrying tight deadlines — running one
    dispatch round between bursts so submission races execution.  Rejected
    jobs (backpressure) drain one round and retry once; a second rejection
    sheds the job.  Returns the service stats plus workload accounting.
    This is the load the CLI (``repro serve``) and the CI smoke job run.
    Example::

        service = BatchSimulationService(num_workers=2)
        report = saturation_workload(service, ["qft", "ghz"], num_jobs=12)
        workload = report["workload"]
        assert workload["jobs_done"] + workload["jobs_shed"] <= 12
    """
    rng = np.random.default_rng(seed)
    circuits = {
        family: make_circuit(family, num_qubits, seed=seed)
        for family in families
    }
    submitted, shed = [], 0
    for i in range(num_jobs):
        family = families[int(rng.integers(len(families)))]
        inputs = int(rng.integers(1, max_inputs + 1))
        priority = int(rng.integers(0, 4))
        deadline = None
        if rng.random() < deadline_fraction:
            deadline = service.clock() + float(rng.uniform(0.0, 0.1))
        for attempt in (0, 1):
            try:
                job = service.submit(
                    circuits[family],
                    num_inputs=inputs,
                    priority=priority,
                    deadline=deadline,
                )
                submitted.append(job.job_id)
                break
            except AdmissionError:
                if attempt:  # drained once already: shed this job
                    shed += 1
                else:  # backpressure: drain one round, then retry
                    service.step()
        if (i + 1) % submit_burst == 0:
            service.step()
    stats = service.drain()
    done = [service.job(job_id) for job_id in submitted]
    stats["workload"] = {
        "families": sorted(circuits),
        "num_qubits": num_qubits,
        "jobs_requested": num_jobs,
        "jobs_submitted": len(submitted),
        "jobs_shed": shed,
        "jobs_done": sum(1 for j in done if j.status is JobStatus.DONE),
        "jobs_failed": sum(1 for j in done if j.status is JobStatus.FAILED),
        "solo_retries": sum(1 for j in done if j.solo_retry),
        "seed": seed,
    }
    return stats
