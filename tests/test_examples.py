"""Smoke tests running the fast example scripts end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "equivalence_checking.py",
    "differential_testing.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_all_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "differential_testing.py",
        "equivalence_checking.py",
        "qnn_state_analysis.py",
        "noisy_trajectories.py",
        "vqe_ising.py",
    } <= names
