"""NZR vectors (Figure 3 of the paper) and the BQCS cost of a gate matrix.

The NZRV of a matrix DD is a *vector DD* whose entry at row ``r`` is the
number of non-zero elements in that row.  It is computed with the paper's
recurrence over the node map ``T``::

    T[node] = DDConcatenate(DDAdd(T[c00], T[c01]), DDAdd(T[c10], T[c11]))

(for terminals, a count of 1).  The BQCS cost of a gate is the maximum entry
of its NZRV — the number of multiply-accumulate operations per state
amplitude when the gate runs as an ELL spMM.
"""

from __future__ import annotations

import math

from ..errors import DDError
from ..obs import get_metrics
from .manager import DDManager
from .node import Edge, MNode, VNode, ZERO_EDGE


def nzr_vector(mgr: DDManager, matrix: Edge) -> Edge:
    """Vector DD holding the per-row non-zero counts of ``matrix``.

    Results are cached on the manager per matrix node: fusion evaluates the
    cost of many overlapping candidate products, and hash-consing makes
    their shared sub-matrices hit this cache.
    """
    cache = mgr._cache_nzrv

    def rec(e: Edge) -> Edge:
        if e.weight == 0:
            return ZERO_EDGE
        if e.node is None:
            return mgr.terminal(1.0)
        hit = cache.get(e.node.nid)
        if hit is None:
            c = e.node.children
            top = mgr.v_add(rec(c[0]), rec(c[1]))
            bottom = mgr.v_add(rec(c[2]), rec(c[3]))
            hit = mgr.v_concatenate(top, bottom, e.node.level)
            cache[e.node.nid] = hit
        return hit

    return rec(matrix)


def vector_max(edge: Edge, mgr: DDManager | None = None) -> float:
    """Maximum entry of a non-negative-real vector DD (DFS max-product)."""
    if edge.weight == 0:
        return 0.0
    memo = mgr._cache_vmax if mgr is not None else {}

    def rec(node: VNode | None) -> float:
        if node is None:
            return 1.0
        hit = memo.get(node.nid)
        if hit is None:
            hit = max(
                (abs(child.weight) * rec(child.node))
                for child in node.children
                if child.weight != 0
            )
            memo[node.nid] = hit
        return hit

    return abs(edge.weight) * rec(edge.node)


def vector_moments(
    edge: Edge, num_qubits: int, mgr: DDManager | None = None
) -> tuple[float, float]:
    """(sum, sum of squares) over all ``2^n`` entries of a real vector DD."""
    if edge.weight == 0:
        return (0.0, 0.0)
    memo = mgr._cache_vmoments if mgr is not None else {}

    def rec(node: VNode | None) -> tuple[float, float]:
        if node is None:
            return (1.0, 1.0)
        hit = memo.get(node.nid)
        if hit is None:
            s = s2 = 0.0
            for child in node.children:
                if child.weight == 0:
                    continue
                cs, cs2 = rec(child.node)
                w = abs(child.weight)
                s += w * cs
                s2 += w * w * cs2
            hit = (s, s2)
            memo[node.nid] = hit
        return hit

    s, s2 = rec(edge.node)
    w = abs(edge.weight)
    return (w * s, w * w * s2)


def max_nzr(mgr: DDManager, matrix: Edge) -> int:
    """BQCS cost of a DD gate matrix: its maximum non-zeros per row."""
    value = int(round(vector_max(nzr_vector(mgr, matrix), mgr)))
    get_metrics().observe("nzrv.max_nzr", value)
    return value


def nzr_statistics(mgr: DDManager, matrix: Edge) -> dict[str, float]:
    """Mean, standard deviation, max, and coefficient of variation of the
    NZR distribution across all rows (the Table 1 quantity)."""
    nzrv = nzr_vector(mgr, matrix)
    rows = 1 << mgr.num_qubits
    total, total_sq = vector_moments(nzrv, mgr.num_qubits, mgr)
    mean = total / rows
    variance = max(total_sq / rows - mean * mean, 0.0)
    std = math.sqrt(variance)
    return {
        "mean": mean,
        "std": std,
        "max": vector_max(nzrv, mgr),
        "cv": (std / mean) if mean > 0 else 0.0,
    }


def is_diagonal_dd(matrix: Edge) -> bool:
    """True if the DD matrix has non-zeros only on the diagonal."""
    memo: dict[int, bool] = {}

    def rec(e: Edge) -> bool:
        if e.weight == 0:
            return True
        if e.node is None:
            return True
        hit = memo.get(e.node.nid)
        if hit is None:
            c = e.node.children
            hit = c[1].weight == 0 and c[2].weight == 0 and rec(c[0]) and rec(c[3])
            memo[e.node.nid] = hit
        return hit

    return rec(matrix)


def is_permutation_like(mgr: DDManager, matrix: Edge) -> bool:
    """True if every row has at most one non-zero (covers diagonal and
    permutation matrices — the paper's cost-1 gate class)."""
    return max_nzr(mgr, matrix) <= 1
