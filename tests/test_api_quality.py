"""API quality gates: documentation and export hygiene for every package."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.service",
    "repro.obs",
    "repro.resilience",
    "repro.circuit",
    "repro.dd",
    "repro.ell",
    "repro.fusion",
    "repro.gpu",
    "repro.sim",
    "repro.bench",
    "repro.transpile",
    "repro.verify",
    "repro.noise",
    "repro.vqa",
    "repro.testing",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.walk_packages(package.__path__, package_name + "."):
            yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert not undocumented, undocumented


def test_every_public_symbol_in_all_exists():
    broken = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            if not hasattr(package, name):
                broken.append(f"{package_name}.{name}")
    assert not broken, broken


def test_public_functions_and_classes_are_documented():
    undocumented = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    undocumented.append(f"{package_name}.{name}")
    assert not undocumented, undocumented


def test_all_lists_are_sorted_for_readability():
    unsorted = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        exported = list(getattr(package, "__all__", []))
        if exported != sorted(exported, key=str.lower):
            unsorted.append(package_name)
    assert not unsorted, unsorted


#: the re-exported user-facing API: every class/function here must carry a
#: one-paragraph docstring *with a usage example* (a ``::`` literal block
#: or a doctest) — enforced so the docs suite can point at `help()` safely
EXAMPLE_REQUIRED_PACKAGES = ["repro", "repro.service"]


def test_reexported_api_docstrings_include_examples():
    missing = []
    for package_name in EXAMPLE_REQUIRED_PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            doc = inspect.getdoc(obj) or ""
            if not doc.strip():
                missing.append(f"{package_name}.{name} (no docstring)")
            elif ">>>" not in doc and "::" not in doc:
                missing.append(f"{package_name}.{name} (no example)")
    assert not missing, missing


def test_package_version():
    assert repro.__version__
