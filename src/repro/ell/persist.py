"""Persisting compiled simulation artifacts.

The paper highlights that "the circuit is optimized once into a reusable
simulation task graph"; this module makes the expensive one-time artifacts
reusable *across processes* by saving them to a single ``.npz`` archive.

Two formats are supported:

* **v1** — :class:`EllBundle`: just the ordered fused-gate ELL matrices.
* **v2** — :class:`CompiledPlan`: the *full* compiled execution plan — the
  fusion-plan metadata (per-fused-gate costs, source-gate provenance,
  non-zero totals), the hybrid conversion decisions (``conv_infos``), and
  optionally the converted ELL matrices.  This is what the disk tier of
  :class:`~repro.sim.base.PlanCache` round-trips so a warm process skips
  stages 1-2 (fusion + conversion) entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import ConversionError
from .format import ELLMatrix

_FORMAT_VERSION = 1
_PLAN_FORMAT_VERSION = 2


def plan_fingerprint(circuit, extra: tuple = ()) -> str:
    """The canonical structural key of a compiled execution plan.

    Combines :meth:`Circuit.fingerprint` — qubit count plus every gate's
    name, operands, and exact parameter bits — with a hashed ``extra``
    tuple of compilation settings.  For the BQSim simulator the tuple is
    its ``_cache_extra()``: fusion algorithm, cost cap, tau, ELL on/off,
    plus — only when below 1.0 — the requested fidelity budget; the
    serving layer appends per-job coalescing options on top.  Everything
    that names a compiled plan goes through this one function: the
    :class:`~repro.sim.base.PlanCache` memory and disk tiers key entries
    with it, archives record it as :attr:`CompiledPlan.fingerprint`, the
    serving layer's coalescer uses it to decide which queued jobs can
    share one mega-batch (so exact jobs never coalesce with approximate
    ones, and different budgets never coalesce with each other), and the
    gateway's consistent-hash router uses it to pick a home shard — so
    "same fingerprint" always means "same compiled plan" at every layer.

    Two structurally equal circuits fingerprint equally regardless of
    object identity, display name, or process; any gate edit, parameter
    bit flip, or settings change produces a different key.  The result is
    filesystem-safe (hex, plus one ``-`` separator when ``extra`` is
    non-empty).
    """
    digest = circuit.fingerprint()
    if extra:
        salt = hashlib.sha256(repr(extra).encode()).hexdigest()[:16]
        return f"{digest[:48]}-{salt}"
    return digest[:48]


@contextmanager
def _open_archive(path: str | Path, what: str):
    """Open an ``.npz`` archive, mapping every I/O-level failure — missing
    file, truncation, zip corruption, bad compression stream — to a typed
    :class:`ConversionError` instead of leaking ``OSError``/``BadZipFile``."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            yield data
    except ConversionError:
        raise
    except (
        OSError,
        ValueError,
        EOFError,
        zipfile.BadZipFile,
        zlib.error,
    ) as exc:
        raise ConversionError(
            f"unreadable {what} archive {path.name!r}: {exc}"
        ) from exc


def _read(data, key: str, what: str):
    """Read one archive entry, naming the offending key on failure."""
    try:
        return data[key]
    except KeyError:
        raise ConversionError(
            f"{what} archive is missing entry {key!r}", key=key
        ) from None
    except (ValueError, zipfile.BadZipFile, zlib.error) as exc:
        raise ConversionError(
            f"{what} archive entry {key!r} is corrupt: {exc}", key=key
        ) from exc


def _check_version(data, expected: int, what: str) -> int:
    version = int(_read(data, "format_version", what))
    if version == expected:
        return version
    if version > expected:
        raise ConversionError(
            f"{what} format {version} is newer than supported "
            f"({expected}); upgrade to read this archive",
            version=version,
        )
    raise ConversionError(
        f"{what} format {version} not supported (expected {expected})",
        version=version,
    )


@dataclass(frozen=True)
class EllBundle:
    """An ordered list of fused-gate ELL matrices for one circuit."""

    circuit_name: str
    num_qubits: int
    matrices: tuple[ELLMatrix, ...]

    def __len__(self) -> int:
        return len(self.matrices)

    @property
    def total_cost(self) -> int:
        """#MAC per amplitude across the bundle."""
        return sum(m.width for m in self.matrices)

    def apply(self, states: np.ndarray) -> np.ndarray:
        """Push a state block through every matrix in order.

        Runs on compiled gather plans with consecutive width-1 matrices
        composed into a single pass (see :func:`repro.ell.build_apply_plans`).
        """
        from .spmm import build_apply_plans

        for plan in build_apply_plans(self.matrices):
            states = plan.apply(states)
        return states


def save_bundle(bundle: EllBundle, path: str | Path) -> Path:
    """Write a bundle as a compressed ``.npz`` archive."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "num_qubits": np.array(bundle.num_qubits),
        "num_gates": np.array(len(bundle.matrices)),
        "circuit_name": np.array(bundle.circuit_name),
    }
    for i, matrix in enumerate(bundle.matrices):
        payload[f"values_{i}"] = matrix.values
        payload[f"cols_{i}"] = matrix.cols
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_bundle(path: str | Path) -> EllBundle:
    """Load a bundle previously written by :func:`save_bundle`.

    Every failure mode — missing file, truncated zip, missing entry, bad
    format version — raises :class:`ConversionError` (never a bare
    ``KeyError`` or ``BadZipFile``) so callers can treat the archive as a
    cache miss or quarantine it.
    """
    with _open_archive(path, "bundle") as data:
        _check_version(data, _FORMAT_VERSION, "bundle")
        num_qubits = int(_read(data, "num_qubits", "bundle"))
        num_gates = int(_read(data, "num_gates", "bundle"))
        matrices = []
        for i in range(num_gates):
            values = _read(data, f"values_{i}", "bundle")
            cols = _read(data, f"cols_{i}", "bundle")
            matrices.append(ELLMatrix(num_qubits, values, cols))
        return EllBundle(
            circuit_name=str(_read(data, "circuit_name", "bundle")),
            num_qubits=num_qubits,
            matrices=tuple(matrices),
        )


def bundle_from_plan(circuit_name: str, num_qubits: int, ells) -> EllBundle:
    """Wrap a list of converted ELL matrices as a bundle."""
    return EllBundle(
        circuit_name=circuit_name,
        num_qubits=num_qubits,
        matrices=tuple(ells),
    )


# ---------------------------------------------------------------------------
# Format v2: full compiled execution plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledPlan:
    """Everything stages 1-2 produce for one circuit, minus the DDs.

    ``matrices`` is ``None`` when the plan was compiled model-only
    (``execute=False``): the metadata still lets a warm run skip fusion and
    conversion *timing* work, but numeric execution needs the matrices and
    falls back to a rebuild.
    """

    fingerprint: str
    circuit_name: str
    num_qubits: int
    algorithm: str
    source_gate_count: int
    fused_nodes: int
    gate_costs: tuple[int, ...]
    gate_indices: tuple[tuple[int, ...], ...]
    gate_nnz: tuple[float, ...]
    conv_infos: tuple[dict, ...]
    matrices: tuple[ELLMatrix, ...] | None = None
    #: fidelity-ledger summary of the approximation pass that produced this
    #: plan (``None`` for exact plans and archives predating the pass); a
    #: warm process reports ``achieved_fidelity`` without re-pruning
    approx: dict | None = None

    def __len__(self) -> int:
        return len(self.gate_costs)

    @property
    def has_matrices(self) -> bool:
        return self.matrices is not None

    def to_fusion_plan(self):
        """Reconstruct a :class:`~repro.fusion.plan.FusionPlan` skeleton.

        The fused-gate DDs are gone (``dd=None``); costs, provenance, and
        nnz totals — everything stage 3 and the stats consumers read — are
        intact.
        """
        from ..fusion.plan import FusedGate, FusionPlan

        gates = tuple(
            FusedGate(dd=None, cost=cost, gate_indices=indices, nnz=nnz)
            for cost, indices, nnz in zip(
                self.gate_costs, self.gate_indices, self.gate_nnz
            )
        )
        return FusionPlan(
            num_qubits=self.num_qubits,
            gates=gates,
            algorithm=self.algorithm,
            source_gate_count=self.source_gate_count,
        )


def save_compiled_plan(plan: CompiledPlan, path: str | Path) -> Path:
    """Write a compiled plan as a compressed ``.npz`` archive (atomically)."""
    path = Path(path)
    indices_flat = np.array(
        [i for indices in plan.gate_indices for i in indices], dtype=np.int64
    )
    offsets = np.cumsum([0] + [len(i) for i in plan.gate_indices]).astype(np.int64)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_PLAN_FORMAT_VERSION),
        "fingerprint": np.array(plan.fingerprint),
        "circuit_name": np.array(plan.circuit_name),
        "num_qubits": np.array(plan.num_qubits),
        "algorithm": np.array(plan.algorithm),
        "source_gate_count": np.array(plan.source_gate_count),
        "fused_nodes": np.array(plan.fused_nodes),
        "num_gates": np.array(len(plan.gate_costs)),
        "gate_costs": np.array(plan.gate_costs, dtype=np.int64),
        "gate_nnz": np.array(plan.gate_nnz, dtype=np.float64),
        "gate_indices_flat": indices_flat,
        "gate_indices_offsets": offsets,
        "conv_routes": np.array([i["route"] for i in plan.conv_infos]),
        "conv_edges": np.array(
            [i["edges"] for i in plan.conv_infos], dtype=np.int64
        ),
        "conv_widths": np.array(
            [i["width"] for i in plan.conv_infos], dtype=np.int64
        ),
        "conv_times": np.array(
            [i["time"] for i in plan.conv_infos], dtype=np.float64
        ),
        "has_matrices": np.array(1 if plan.has_matrices else 0),
    }
    if plan.approx is not None:
        payload["approx_json"] = np.array(json.dumps(plan.approx))
    if plan.matrices is not None:
        for i, matrix in enumerate(plan.matrices):
            payload[f"values_{i}"] = matrix.values
            payload[f"cols_{i}"] = matrix.cols
    final = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    # pid-unique scratch name: concurrent writers (pool workers racing on
    # one shared cache dir) must never interleave bytes in one temp file
    tmp = final.with_name(f"{final.name}.tmp{os.getpid()}.npz")
    np.savez_compressed(tmp, **payload)
    tmp.replace(final)
    return final


def load_compiled_plan(path: str | Path) -> CompiledPlan:
    """Load a compiled plan previously written by :func:`save_compiled_plan`.

    Same failure contract as :func:`load_bundle`: every problem surfaces as
    a typed :class:`ConversionError` carrying the offending key or version.
    """
    with _open_archive(path, "plan") as data:
        _check_version(data, _PLAN_FORMAT_VERSION, "plan")
        num_qubits = int(_read(data, "num_qubits", "plan"))
        num_gates = int(_read(data, "num_gates", "plan"))
        flat = _read(data, "gate_indices_flat", "plan")
        offsets = _read(data, "gate_indices_offsets", "plan")
        gate_indices = tuple(
            tuple(int(i) for i in flat[offsets[g] : offsets[g + 1]])
            for g in range(num_gates)
        )
        conv_infos = tuple(
            {
                "route": str(route),
                "edges": int(edges),
                "width": int(width),
                "time": float(t),
            }
            for route, edges, width, t in zip(
                _read(data, "conv_routes", "plan"),
                _read(data, "conv_edges", "plan"),
                _read(data, "conv_widths", "plan"),
                _read(data, "conv_times", "plan"),
            )
        )
        approx: dict | None = None
        if "approx_json" in getattr(data, "files", ()):
            try:
                approx = json.loads(str(_read(data, "approx_json", "plan")))
            except (TypeError, ValueError) as exc:
                raise ConversionError(
                    f"plan archive entry 'approx_json' is corrupt: {exc}",
                    key="approx_json",
                ) from exc
        matrices: tuple[ELLMatrix, ...] | None = None
        if int(_read(data, "has_matrices", "plan")):
            loaded = []
            for i in range(num_gates):
                values = _read(data, f"values_{i}", "plan")
                cols = _read(data, f"cols_{i}", "plan")
                loaded.append(ELLMatrix(num_qubits, values, cols))
            matrices = tuple(loaded)
        return CompiledPlan(
            fingerprint=str(_read(data, "fingerprint", "plan")),
            circuit_name=str(_read(data, "circuit_name", "plan")),
            num_qubits=num_qubits,
            algorithm=str(_read(data, "algorithm", "plan")),
            source_gate_count=int(_read(data, "source_gate_count", "plan")),
            fused_nodes=int(_read(data, "fused_nodes", "plan")),
            gate_costs=tuple(int(c) for c in _read(data, "gate_costs", "plan")),
            gate_indices=gate_indices,
            gate_nnz=tuple(float(x) for x in _read(data, "gate_nnz", "plan")),
            conv_infos=conv_infos,
            matrices=matrices,
            approx=approx,
        )
