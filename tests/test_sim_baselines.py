"""Tests for the cuQuantum / Qiskit Aer / FlatDD baseline simulators."""

import math

import numpy as np
import pytest

from repro.circuit import generate_batches
from repro.circuit.generators import make_circuit
from repro.fusion.bqcs import bqcs_fusion
from repro.gpu import GpuSpec
from repro.sim import (
    BQSimSimulator,
    BatchSpec,
    CuQuantumSimulator,
    FlatDDSimulator,
    QiskitAerSimulator,
    cross_validate,
)
from repro.sim.statevector import simulate_batch
from repro.errors import SimulationError


@pytest.fixture
def spec():
    return BatchSpec(num_batches=3, batch_size=8, seed=4)


@pytest.mark.parametrize(
    "simulator_cls", [CuQuantumSimulator, QiskitAerSimulator, FlatDDSimulator]
)
def test_baseline_outputs_match_reference(simulator_cls, spec, random_circuits):
    sim = simulator_cls()
    for circuit in random_circuits:
        batches = list(generate_batches(4, spec.num_batches, spec.batch_size, spec.seed))
        result = sim.run(circuit, spec, batches=batches)
        for out, batch in zip(result.outputs, batches):
            assert np.allclose(out, simulate_batch(circuit, batch), atol=1e-8)


def test_cross_validate_all_simulators(spec, small_circuit):
    sims = [
        BQSimSimulator(),
        CuQuantumSimulator(),
        QiskitAerSimulator(),
        FlatDDSimulator(),
    ]
    deviations = cross_validate(small_circuit, spec, sims)
    assert set(deviations) == {"bqsim", "cuquantum", "qiskit-aer", "flatdd"}
    assert all(v < 1e-8 for v in deviations.values())


def test_cross_validate_catches_wrong_results(spec, small_circuit):
    class Broken(BQSimSimulator):
        name = "broken"

        def run(self, circuit, spec, batches=None, execute=True):
            result = super().run(circuit, spec, batches=batches, execute=execute)
            result.outputs[0] = result.outputs[0] + 0.5
            return result

    with pytest.raises(SimulationError, match="deviates"):
        cross_validate(small_circuit, spec, [Broken()])


def test_aer_host_model_dominates(spec):
    circuit = make_circuit("vqe", 8)
    result = QiskitAerSimulator().run(circuit, spec, execute=False)
    assert result.breakdown["host"] > result.breakdown["kernels"]
    expected = (
        QiskitAerSimulator().cpu.aer_run_overhead
        + QiskitAerSimulator().cpu.aer_amp_time * 256
        + QiskitAerSimulator().cpu.aer_gate_time * len(circuit.gates)
    ) * spec.num_inputs
    assert result.breakdown["host"] == pytest.approx(expected)


def test_aer_scales_with_inputs_not_batches():
    circuit = make_circuit("vqe", 8)
    sim = QiskitAerSimulator()
    a = sim.run(circuit, BatchSpec(2, 32), execute=False).modeled_time
    b = sim.run(circuit, BatchSpec(8, 8), execute=False).modeled_time
    assert a == pytest.approx(b)


def test_flatdd_time_linear_in_inputs():
    circuit = make_circuit("vqe", 8)
    sim = FlatDDSimulator()
    t1 = sim.run(circuit, BatchSpec(1, 16), execute=False).modeled_time
    t4 = sim.run(circuit, BatchSpec(4, 16), execute=False).modeled_time
    assert t4 == pytest.approx(4 * t1, rel=1e-6)
    assert sim.run(circuit, BatchSpec(1, 16), execute=False).power.gpu_watts == 0


def test_cuquantum_stream_has_no_overlap(spec):
    circuit = make_circuit("vqe", 8)
    result = CuQuantumSimulator().run(circuit, spec, execute=False)
    assert result.timeline.overlap_fraction() == 0.0


def test_cuquantum_plus_b_out_of_memory(spec):
    """BQSim's fused gates span all qubits; the dense batched API cannot hold
    their 4^n matrices on a small device (Table 4's failed runs)."""
    circuit = make_circuit("vqe", 12)
    tiny = GpuSpec(memory_bytes=256 * 1024 * 1024)
    sim = CuQuantumSimulator(
        gpu=tiny, plan_provider=bqcs_fusion, variant_name="cuquantum+B"
    )
    result = sim.run(circuit, spec, execute=False)
    assert result.stats.get("failed")
    assert math.isinf(result.modeled_time)


def test_cuquantum_plus_b_slower_than_bqsim(spec):
    circuit = make_circuit("vqe", 10)
    bq = BQSimSimulator().run(circuit, spec, execute=False)
    plus_b = CuQuantumSimulator(
        plan_provider=bqcs_fusion, variant_name="cuquantum+B"
    ).run(circuit, spec, execute=False)
    if not plus_b.stats.get("failed"):
        assert plus_b.modeled_time > bq.breakdown["simulation"]


def test_modeled_ordering_matches_paper_at_scale():
    """At paper-like scale BQSim < cuQuantum < Aer, and FlatDD is slowest or
    close to it (Table 2's ordering)."""
    circuit = make_circuit("vqe", 12)
    spec = BatchSpec(num_batches=200, batch_size=256)
    times = {}
    for sim in (BQSimSimulator(), CuQuantumSimulator(), QiskitAerSimulator(),
                FlatDDSimulator()):
        times[sim.name] = sim.run(circuit, spec, execute=False).modeled_time
    assert times["bqsim"] < times["cuquantum"]
    assert times["cuquantum"] < times["qiskit-aer"]
    assert times["bqsim"] * 50 < times["flatdd"]


def test_power_ordering(spec):
    """BQSim draws less GPU power than cuQuantum and less CPU power than the
    host-heavy baselines (Figure 11)."""
    circuit = make_circuit("vqe", 12)
    big = BatchSpec(num_batches=50, batch_size=256)
    bq = BQSimSimulator().run(circuit, big, execute=False)
    cu = CuQuantumSimulator().run(circuit, big, execute=False)
    aer = QiskitAerSimulator().run(circuit, big, execute=False)
    fd = FlatDDSimulator().run(circuit, big, execute=False)
    assert bq.power.gpu_watts < cu.power.gpu_watts
    assert bq.power.cpu_watts < aer.power.cpu_watts
    assert bq.power.cpu_watts < fd.power.cpu_watts
