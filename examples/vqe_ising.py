"""VQE on the transverse-field Ising model — the variational workload.

Variational algorithms evaluate *many circuit configurations* per
optimization step (the related-work workload [29] of the paper); this
example minimizes the TFIM energy with a hardware-efficient ansatz using
the deterministic Rotosolve optimizer, then cross-checks the optimum
against exact diagonalization and measures the optimized state.

Run:  python examples/vqe_ising.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import sample_counts
from repro.sim.statevector import simulate_state
from repro.vqa import Ansatz, run_rotosolve, transverse_field_ising


def main() -> None:
    num_qubits = 4
    hamiltonian = transverse_field_ising(num_qubits, j=1.0, h=0.7)
    exact = hamiltonian.ground_energy()
    ansatz = Ansatz(num_qubits, reps=2)
    print(f"TFIM n={num_qubits} (J=1, h=0.7): exact ground energy {exact:.5f}")
    print(f"ansatz: {ansatz.num_parameters} parameters, "
          f"{len(ansatz.bind(ansatz.random_parameters(0)))} gates\n")

    trace: list[float] = []
    result = run_rotosolve(
        ansatz,
        hamiltonian,
        sweeps=6,
        # the identity start (theta = 0) mimics adiabatic initialization and
        # avoids the local traps random starts fall into
        initial=np.zeros(ansatz.num_parameters),
        callback=lambda sweep, energy: trace.append(energy),
    )
    for sweep, energy in enumerate(trace):
        print(f"sweep {sweep}: E = {energy:.5f} (gap {energy - exact:.5f})")

    gap = result.energy - exact
    print(f"\nconverged: E = {result.energy:.5f}, gap {gap:.5f}, "
          f"{result.evaluations} circuit evaluations")
    assert gap < 0.1, "VQE should reach the ground state within 0.1"

    state = simulate_state(ansatz.bind(result.parameters))
    counts = sample_counts(state, shots=1000, rng=0)[0]
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:4]
    print("optimized-state samples:", ", ".join(f"{k}:{v}" for k, v in top))
    # ferromagnetic TFIM: the all-0 and all-1 configurations dominate
    assert counts.get("0" * num_qubits, 0) + counts.get("1" * num_qubits, 0) > 500


if __name__ == "__main__":
    main()
