"""Cross-module edge cases and regression guards."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, gate_unitary, parse_qasm, to_qasm
from repro.circuit.gates import Gate
from repro.dd import (
    DDManager,
    ONE_EDGE,
    ZERO_EDGE,
    count_edges,
    count_nodes,
    gate_matrix_dd,
    iter_matrix_entries,
    matrix_to_dense,
)
from repro.errors import CircuitError, QasmError


# -- gates / circuit -----------------------------------------------------------

def test_single_qubit_manager_works():
    mgr = DDManager(1)
    edge = gate_matrix_dd(mgr, Gate.make("h", [0]))
    assert np.allclose(matrix_to_dense(edge, 1), Gate.make("h", [0]).matrix())


def test_gate_unitary_noncontiguous_two_qubit():
    gate = Gate.make("swap", [0, 3])
    u = gate_unitary(gate, 4)
    assert np.allclose(u @ u.conj().T, np.eye(16))
    # |0001> <-> |1000>
    vec = np.zeros(16)
    vec[1] = 1
    assert (u @ vec)[8] == 1


def test_fsim_gate_in_circuit():
    c = Circuit(3)
    c.add("fsim", (0, 2), (0.47 * math.pi, math.pi / 6))
    u = c.to_matrix()
    assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-12)


def test_iswap_has_no_symbolic_dagger():
    with pytest.raises(CircuitError):
        Gate.make("iswap", [0, 1]).dagger()


def test_deep_controlled_gate_dd(mgr4):
    gate = Gate.make("mcx", [0, 1, 2, 3])  # 3 controls
    edge = gate_matrix_dd(mgr4, gate)
    dense = matrix_to_dense(edge, 4)
    assert np.allclose(dense, gate_unitary(gate, 4))
    # only two off-diagonal entries
    off = dense - np.diag(np.diag(dense))
    assert (np.abs(off) > 1e-12).sum() == 2


# -- qasm -----------------------------------------------------------------------

def test_qasm_param_functions():
    c = parse_qasm(
        'OPENQASM 2.0;\nqreg q[1];\nrx(2*cos(0)) q[0];\nry(sqrt(4)) q[0];\n'
    )
    assert c[0].params[0] == pytest.approx(2.0)
    assert c[1].params[0] == pytest.approx(2.0)


def test_qasm_rejects_mismatched_broadcast():
    src = "OPENQASM 2.0;\nqreg a[2];\nqreg b[3];\ncx a,b;\n"
    with pytest.raises(QasmError, match="broadcast"):
        parse_qasm(src)


def test_qasm_roundtrip_with_fsim_fails_gracefully():
    c = Circuit(2)
    c.add("fsim", (0, 1), (0.3, 0.2))
    text = to_qasm(c)  # fsim serializes under its own name
    assert "fsim" in text
    parsed = parse_qasm(text)
    assert parsed[0].name == "fsim"


# -- DD edges ---------------------------------------------------------------------

def test_count_helpers_on_constants():
    assert count_nodes(ZERO_EDGE) == 0
    assert count_edges(ZERO_EDGE) == 0
    assert count_nodes(ONE_EDGE) == 0
    assert count_edges(ONE_EDGE) == 1  # the root edge itself


def test_iter_matrix_entries_matches_dense(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("cp", [0, 2], [0.7]))
    dense = matrix_to_dense(edge, 4)
    entries = {(r, c): v for r, c, v in iter_matrix_entries(edge, 4)}
    nz = {
        (r, c): dense[r, c]
        for r in range(16)
        for c in range(16)
        if abs(dense[r, c]) > 1e-14
    }
    assert entries.keys() == nz.keys()
    for key, value in nz.items():
        assert entries[key] == pytest.approx(value)


def test_edge_scaled_zero_collapses():
    assert ONE_EDGE.scaled(0.0) is ZERO_EDGE
    assert ZERO_EDGE.is_zero and ZERO_EDGE.is_terminal
    assert ONE_EDGE.level == -1


# -- fusion plan provenance --------------------------------------------------------

def test_fused_gate_indices_are_monotone():
    from repro.circuit.generators import make_circuit
    from repro.fusion import bqcs_fusion

    circuit = make_circuit("tsp", 8)
    plan = bqcs_fusion(DDManager(8), circuit)
    for fused in plan.gates:
        assert list(fused.gate_indices) == sorted(fused.gate_indices)
    flattened = [i for fg in plan.gates for i in fg.gate_indices]
    assert flattened == sorted(flattened)  # contiguity preserved end to end
