"""Tests for incremental (qTask-style) resimulation."""

import numpy as np
import pytest

from repro.circuit import Circuit, generate_batches
from repro.circuit.gates import Gate
from repro.circuit.generators import random_circuit, vqe
from repro.errors import SimulationError
from repro.sim import IncrementalSession
from repro.sim.statevector import simulate_batch


@pytest.fixture
def session():
    circuit = vqe(6, seed=2)
    batches = list(generate_batches(6, 2, 8, seed=1))
    return IncrementalSession(circuit, batches), batches


def test_initial_outputs_match_reference(session):
    sess, batches = session
    for out, batch in zip(sess.outputs, batches):
        assert np.allclose(out, simulate_batch(sess.circuit, batch), atol=1e-8)


def test_late_edit_reuses_prefix(session):
    sess, batches = session
    idx = len(sess.circuit.gates) - 2
    old = sess.circuit.gates[idx]
    update = sess.update_gate(
        idx, Gate(old.name, old.qubits, (old.params[0] + 0.5,), old.controls)
    )
    assert update.reused_fraction > 0.5
    assert update.resimulated_fused_gates < update.total_fused_gates
    for out, batch in zip(sess.outputs, batches):
        assert np.allclose(out, simulate_batch(sess.circuit, batch), atol=1e-8)


def test_early_edit_resimulates_everything(session):
    sess, batches = session
    update = sess.update_gate(0, Gate("ry", sess.circuit.gates[0].qubits, (1.0,)))
    assert update.reused_fraction == 0.0
    for out, batch in zip(sess.outputs, batches):
        assert np.allclose(out, simulate_batch(sess.circuit, batch), atol=1e-8)


def test_chained_edits_stay_consistent(session):
    sess, batches = session
    rng = np.random.default_rng(0)
    for _ in range(3):
        idx = int(rng.integers(len(sess.circuit.gates)))
        gate = sess.circuit.gates[idx]
        if gate.params:
            new = Gate(gate.name, gate.qubits,
                       (gate.params[0] + float(rng.uniform(0.1, 1.0)),),
                       gate.controls)
        else:
            new = gate
        sess.update_gate(idx, new)
        for out, batch in zip(sess.outputs, batches):
            assert np.allclose(out, simulate_batch(sess.circuit, batch), atol=1e-8)


def test_gate_type_change(session):
    sess, batches = session
    # replace a CX with a CZ mid-circuit
    idx = next(i for i, g in enumerate(sess.circuit.gates) if g.controls)
    gate = sess.circuit.gates[idx]
    sess.update_gate(idx, Gate("z", gate.qubits, (), gate.controls))
    for out, batch in zip(sess.outputs, batches):
        assert np.allclose(out, simulate_batch(sess.circuit, batch), atol=1e-8)


def test_validation():
    circuit = random_circuit(4, 10, seed=0)
    with pytest.raises(SimulationError, match="at least one batch"):
        IncrementalSession(circuit, [])
    sess = IncrementalSession(circuit, list(generate_batches(4, 1, 4, 0)))
    with pytest.raises(SimulationError, match="out of range"):
        sess.update_gate(99, Gate("h", (0,)))
