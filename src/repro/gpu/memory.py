"""A device memory pool: first-fit allocation with coalescing free lists.

Real GPU runtimes allocate buffers out of pools rather than raw
``cudaMalloc`` calls; this model gives the virtual device the same
machinery — aligned block placement, fragmentation accounting, and reuse —
and is what :class:`~repro.gpu.device.VirtualGPU` would sit on in a
multi-tenant setting (e.g. the multi-GPU sharding of Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError, MemoryFault
from ..resilience.faults import get_fault_injector

DEFAULT_ALIGNMENT = 256  # bytes, cudaMalloc's guarantee


@dataclass(frozen=True)
class PoolBlock:
    """One live allocation inside the pool."""

    offset: int
    nbytes: int
    tag: str


class MemoryPool:
    """First-fit allocator over one contiguous device arena."""

    def __init__(self, capacity: int, alignment: int = DEFAULT_ALIGNMENT):
        if capacity <= 0:
            raise DeviceError("pool capacity must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise DeviceError("alignment must be a positive power of two")
        self.capacity = capacity
        self.alignment = alignment
        self._free: list[tuple[int, int]] = [(0, capacity)]  # (offset, size)
        self._live: dict[int, PoolBlock] = {}

    # -- queries --------------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return sum(b.nbytes for b in self._live.values())

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def largest_free_block(self) -> int:
        return max((size for _, size in self._free), default=0)

    def fragmentation(self) -> float:
        """1 - largest free block / total free bytes (0 = unfragmented)."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def live_blocks(self) -> list[PoolBlock]:
        return sorted(self._live.values(), key=lambda b: b.offset)

    # -- allocate / release -----------------------------------------------------

    def _round_up(self, value: int) -> int:
        mask = self.alignment - 1
        return (value + mask) & ~mask

    def allocate(self, nbytes: int, tag: str = "") -> PoolBlock:
        """First-fit allocation; raises :class:`MemoryFault` when no free
        range fits (distinguishing exhaustion from fragmentation) or when an
        ``oom`` fault is injected."""
        if nbytes <= 0:
            raise DeviceError("allocation size must be positive")
        injector = get_fault_injector()
        if injector is not None and injector.check("oom"):
            raise MemoryFault(
                f"injected pool allocation failure for tag {tag!r} "
                f"({nbytes} bytes)"
            )
        needed = self._round_up(nbytes)
        for index, (offset, size) in enumerate(self._free):
            if size >= needed:
                block = PoolBlock(offset=offset, nbytes=needed, tag=tag)
                remainder = size - needed
                if remainder:
                    self._free[index] = (offset + needed, remainder)
                else:
                    del self._free[index]
                self._live[block.offset] = block
                return block
        if needed <= self.free_bytes:
            raise MemoryFault(
                f"pool fragmented: {needed} B requested, {self.free_bytes} B "
                f"free but largest block is {self.largest_free_block} B"
            )
        raise MemoryFault(
            f"pool exhausted: {needed} B requested, {self.free_bytes} B free"
        )

    def release(self, block: PoolBlock) -> None:
        """Return a block to the pool, coalescing adjacent free ranges."""
        stored = self._live.pop(block.offset, None)
        if stored is None or stored.nbytes != block.nbytes:
            raise DeviceError("releasing a block the pool does not own")
        self._free.append((block.offset, block.nbytes))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for offset, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((offset, size))
        self._free = merged

    def reset(self) -> None:
        """Drop every allocation (end-of-run teardown)."""
        self._live.clear()
        self._free = [(0, self.capacity)]
