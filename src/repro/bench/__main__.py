"""Run experiments from the command line:

    python -m repro.bench [experiment ...] [--scale small|medium|paper]
                          [--output DIR]

With no experiment names, runs everything at the requested scale; with
``--output``, also writes per-experiment JSON plus a Markdown report.
"""

import argparse

from .experiments import ALL_EXPERIMENTS
from .report import write_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=[])
    parser.add_argument(
        "--scale", default="small", choices=["small", "medium", "paper"]
    )
    parser.add_argument(
        "--output", default=None, help="directory for JSON/Markdown reports"
    )
    args = parser.parse_args()
    names = args.experiments or sorted(ALL_EXPERIMENTS)
    results = {}
    for name in names:
        results[name] = ALL_EXPERIMENTS[name].main(args.scale)
    if args.output:
        report = write_report(results, args.output, args.scale)
        print(f"\nwrote {report}")


if __name__ == "__main__":
    main()
