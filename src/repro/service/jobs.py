"""The job model of the batch simulation service.

A :class:`Job` is one independently submitted unit of work: a circuit, a
batch of input states, and scheduling attributes (priority, deadline,
coalescing options).  Jobs move through a strict lifecycle::

    PENDING -> QUEUED -> COALESCED -> RUNNING -> DONE
                  ^          |           |
                  +----------+-----------+  (requeue / redelivery)
                  |          |           |
                  +----------+-----------+---> FAILED / CANCELLED
                                         |
                                         +---> QUARANTINED

``PENDING`` is the freshly constructed job before admission; ``QUEUED``
means admitted and waiting; ``COALESCED`` means grouped into a mega-batch
awaiting a worker; ``RUNNING`` covers the single simulator call that
executes the group; the four terminal states never transition again.
``RUNNING -> QUEUED`` is the at-least-once *redelivery* edge — a job whose
worker process died is returned to the queue with its ``delivery_count``
intact, and a job that exhausts ``max_deliveries`` is moved to
``QUARANTINED`` (a terminal poison state carrying the per-delivery crash
``evidence``) instead of cycling the fleet forever.
Illegal transitions raise :class:`~repro.errors.ServiceError`, so a bug in
the scheduler or worker pool surfaces as a typed error instead of a job
silently stuck in the wrong state.

Job ids are *durable*: ``job-<seq>-<digest>`` where the digest hashes the
circuit structure and the exact input bytes.  The same submission sequence
against the same service therefore names jobs identically across runs,
which is what lets saturation scripts and tests refer to jobs by id.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..circuit import Circuit, InputBatch
from ..errors import ServiceError


class JobStatus(str, Enum):
    """Lifecycle states of a service job.

    String-valued so statuses serialize naturally into stats JSON and
    queue-metrics records.  Legal transitions are enforced by
    :meth:`Job.transition`; ``DONE``/``FAILED``/``CANCELLED``/
    ``QUARANTINED`` are terminal (see :data:`TERMINAL_STATES`).
    Example::

        assert JobStatus.DONE.value == "done"
        assert JobStatus.DONE in TERMINAL_STATES
    """

    PENDING = "pending"
    QUEUED = "queued"
    COALESCED = "coalesced"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    QUARANTINED = "quarantined"


#: states a job never leaves
TERMINAL_STATES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED,
     JobStatus.QUARANTINED}
)

#: legal lifecycle edges (see the module docstring diagram);
#: RUNNING -> QUEUED is redelivery after a worker death, RUNNING ->
#: CANCELLED is an honoured in-flight cancel, RUNNING/QUEUED ->
#: QUARANTINED is the poison exit after ``max_deliveries`` crashes
_TRANSITIONS: dict[JobStatus, frozenset[JobStatus]] = {
    JobStatus.PENDING: frozenset(
        {JobStatus.QUEUED, JobStatus.FAILED, JobStatus.CANCELLED}
    ),
    JobStatus.QUEUED: frozenset(
        {JobStatus.COALESCED, JobStatus.RUNNING, JobStatus.FAILED,
         JobStatus.CANCELLED, JobStatus.QUARANTINED}
    ),
    JobStatus.COALESCED: frozenset(
        {JobStatus.RUNNING, JobStatus.QUEUED, JobStatus.FAILED,
         JobStatus.CANCELLED}
    ),
    JobStatus.RUNNING: frozenset(
        {JobStatus.DONE, JobStatus.FAILED, JobStatus.QUEUED,
         JobStatus.CANCELLED, JobStatus.QUARANTINED}
    ),
    JobStatus.DONE: frozenset(),
    JobStatus.FAILED: frozenset(),
    JobStatus.CANCELLED: frozenset(),
    JobStatus.QUARANTINED: frozenset(),
}


def job_id_for(seq: int, circuit: Circuit, batch: InputBatch) -> str:
    """Durable job id: sequence number + content digest.

    The digest covers the circuit *structure* (via
    :meth:`Circuit.fingerprint`) and the exact input amplitudes, so the id
    both orders jobs (``seq``) and identifies their content across
    processes.
    """
    hasher = hashlib.sha256()
    hasher.update(circuit.fingerprint().encode())
    hasher.update(np.ascontiguousarray(batch.states).tobytes())
    return f"job-{seq}-{hasher.hexdigest()[:12]}"


@dataclass
class Job:
    """One submitted simulation request and its full lifecycle record.

    Bundles a circuit, an input batch, and scheduling attributes
    (priority, optional deadline) with a validated state machine: every
    transition is checked against :class:`JobStatus` rules and appended
    to ``history`` with a timestamp, so a finished job is its own audit
    trail.  Example::

        job = make_job(0, circuit, batch, priority=5)
        assert job.status is JobStatus.PENDING
        assert job.num_inputs == batch.batch_size
    """

    job_id: str
    seq: int
    circuit: Circuit
    batch: InputBatch
    priority: int = 0
    deadline: float | None = None  # absolute service-clock time
    timeout_s: float | None = None  # execution deadline once dispatched
    max_deliveries: int | None = None  # None = the service's default
    options: tuple = ()  # extra coalescing compatibility settings
    #: requested end-to-end fidelity budget in (0, 1]; 1.0 = exact tier.
    #: Part of the coalescing group key (via the plan fingerprint), so an
    #: exact job never lands in an approximate mega-batch.
    fidelity: float = 1.0
    #: measured plan fidelity of the run that produced ``result`` (from
    #: ``stats["approx"]["achieved"]``); always >= ``fidelity``
    achieved_fidelity: float | None = None
    status: JobStatus = JobStatus.PENDING
    submitted_at: float = 0.0  # set at admission
    started_at: float | None = None
    finished_at: float | None = None
    group_key: str = ""  # plan fingerprint, set at admission
    attempts: int = 0  # mega-batch runs this job took part in
    delivery_count: int = 0  # times handed to a worker process
    cancel_requested: bool = False  # async cancel of an in-flight job
    solo_retry: bool = False  # finished via per-job isolation fallback
    error: str | None = None
    result: np.ndarray | None = None
    history: list[str] = field(default_factory=list)
    #: one JSON-safe record per crash/timeout this job witnessed — the
    #: triage payload a quarantined job carries out of the system
    evidence: list[dict] = field(default_factory=list)

    # -- inspection ----------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        """Input state vectors (mega-batch columns) this job contributes."""
        return self.batch.batch_size

    @property
    def num_qubits(self) -> int:
        return self.batch.num_qubits

    @property
    def is_terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def wait_time(self, now: float | None = None) -> float:
        """Seconds from admission to start (or to ``now`` while waiting)."""
        if self.started_at is not None:
            return self.started_at - self.submitted_at
        return 0.0 if now is None else max(0.0, now - self.submitted_at)

    # -- lifecycle -----------------------------------------------------------

    def transition(self, new: JobStatus) -> "Job":
        """Move to ``new``, validating the edge against the lifecycle."""
        if new not in _TRANSITIONS[self.status]:
            raise ServiceError(
                f"job {self.job_id} cannot go {self.status.value} -> "
                f"{new.value}"
            )
        self.history.append(new.value)
        self.status = new
        return self

    def finish(self, result: np.ndarray, at: float) -> "Job":
        self.transition(JobStatus.DONE)
        self.result = result
        self.finished_at = at
        return self

    def fail(self, error: str, at: float) -> "Job":
        self.transition(JobStatus.FAILED)
        self.error = error
        self.finished_at = at
        return self

    def quarantine(self, error: str, at: float) -> "Job":
        """Terminal poison exit: too many crashed deliveries.

        The job keeps its accumulated ``evidence`` (one record per crash)
        so an operator can triage what kept killing workers.
        """
        self.transition(JobStatus.QUARANTINED)
        self.error = error
        self.finished_at = at
        return self

    def describe(self) -> dict:
        """JSON-safe summary (no amplitudes) for logs and CLI output."""
        return {
            "job_id": self.job_id,
            "status": self.status.value,
            "circuit": self.circuit.name,
            "num_qubits": self.num_qubits,
            "num_inputs": self.num_inputs,
            "priority": self.priority,
            "deadline": self.deadline,
            "group_key": self.group_key[:12],
            "attempts": self.attempts,
            "delivery_count": self.delivery_count,
            "timeout_s": self.timeout_s,
            "fidelity": self.fidelity,
            "achieved_fidelity": self.achieved_fidelity,
            "solo_retry": self.solo_retry,
            "wait_s": self.wait_time(),
            "error": self.error,
            "evidence": list(self.evidence),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"<Job {self.job_id} {self.status.value} "
            f"{self.circuit.name} x{self.num_inputs}>"
        )


def make_job(
    seq: int,
    circuit: Circuit,
    batch: InputBatch,
    priority: int = 0,
    deadline: float | None = None,
    timeout_s: float | None = None,
    max_deliveries: int | None = None,
    options: tuple = (),
    fidelity: float = 1.0,
    id_prefix: str = "",
) -> Job:
    """Construct a PENDING job with a durable content-addressed id.

    The id is ``job-<seq>-<sha256(circuit fingerprint ‖ batch
    bytes)[:12]>`` — ``seq`` orders jobs within a service, the digest
    identifies their content across processes.  A sharded service passes
    ``id_prefix`` (e.g. ``"s1/"``) so ids stay unique fleet-wide and name
    their home shard.  Validates that the batch width matches the circuit
    before accepting.  Example::

        job = make_job(0, make_circuit("ghz", 3), zero_state_batch(3, 4))
        assert job.job_id.startswith("job-0-")
    """
    if batch.num_qubits != circuit.num_qubits:
        raise ServiceError(
            f"input batch is {batch.num_qubits}-qubit but circuit "
            f"{circuit.name!r} has {circuit.num_qubits}"
        )
    if batch.batch_size < 1:
        raise ServiceError("job needs at least one input state")
    if timeout_s is not None and timeout_s <= 0:
        raise ServiceError("timeout_s must be > 0 when given")
    if max_deliveries is not None and max_deliveries < 1:
        raise ServiceError("max_deliveries must be >= 1 when given")
    fidelity = float(fidelity)
    if not 0.0 < fidelity <= 1.0:
        raise ServiceError(
            f"fidelity budget must be in (0, 1], got {fidelity}"
        )
    return Job(
        job_id=id_prefix + job_id_for(seq, circuit, batch),
        seq=seq,
        circuit=circuit,
        batch=batch,
        priority=priority,
        deadline=deadline,
        timeout_s=timeout_s,
        max_deliveries=max_deliveries,
        options=tuple(options),
        fidelity=fidelity,
    )
