"""Tests for the NZRV algorithm (Figure 3) and the BQCS cost model."""

import numpy as np
import pytest

from repro.circuit.gates import Gate
from repro.circuit.generators import random_circuit
from repro.dd import (
    DDManager,
    circuit_matrix_dd,
    gate_matrix_dd,
    is_diagonal_dd,
    is_permutation_like,
    matrix_dd_from_dense,
    matrix_to_dense,
    max_nzr,
    nzr_statistics,
    nzr_vector,
    vector_max,
    vector_moments,
    vector_to_dense,
)


def dense_row_counts(edge, n):
    return (np.abs(matrix_to_dense(edge, n)) > 1e-12).sum(axis=1)


@pytest.mark.parametrize(
    "gate,expected_cost",
    [
        (Gate.make("h", [0]), 2),
        (Gate.make("x", [1]), 1),
        (Gate.make("rz", [2], [0.7]), 1),
        (Gate.make("cx", [0, 1]), 1),
        (Gate.make("cz", [2, 3]), 1),
        (Gate.make("swap", [0, 3]), 1),
        (Gate.make("ccx", [0, 1, 2]), 1),
        (Gate.make("ry", [1], [0.3]), 2),
        (Gate.make("rzz", [0, 2], [0.5]), 1),
        (Gate.make("u3", [0], [0.1, 0.2, 0.3]), 2),
        (Gate.make("rxx", [1, 3], [0.8]), 2),
    ],
)
def test_gate_costs(gate, expected_cost, mgr4):
    assert max_nzr(mgr4, gate_matrix_dd(mgr4, gate)) == expected_cost


def test_nzrv_matches_dense_counts_on_random_circuits(mgr4):
    for seed in range(4):
        circuit = random_circuit(4, 12, seed=seed)
        edge = circuit_matrix_dd(mgr4, circuit.gates)
        nzrv = nzr_vector(mgr4, edge)
        got = vector_to_dense(nzrv, 4).real
        assert np.allclose(got, dense_row_counts(edge, 4)), seed


def test_nzrv_paper_example():
    """Figure 3's matrix: an 8x8 whose NZRV alternates (2,1,2,1,...)."""
    m = np.array(
        [
            [1, 0, 0, 0, 0, 0, 1, 0],
            [0, 0, 0, 0, 0, 0, 0, 1],
            [1, 0, 0, 0, 0, 0, 1, 0],
            [0, 1, 0, 0, 0, 0, 0, 0],
            [0, 0, 1, 0, 1, 0, 0, 0],
            [0, 0, 0, 1, 0, 0, 0, 0],
            [0, 0, 1, 0, 1, 0, 0, 0],
            [0, 0, 0, 0, 0, 1, 0, 0],
        ],
        dtype=complex,
    )
    mgr = DDManager(3)
    edge = matrix_dd_from_dense(mgr, m)
    nzrv = vector_to_dense(nzr_vector(mgr, edge), 3).real
    assert np.array_equal(nzrv, [2, 1, 2, 1, 2, 1, 2, 1])
    assert max_nzr(mgr, edge) == 2


def test_vector_max_and_moments(mgr4, rng):
    from repro.dd import vector_dd_from_dense

    values = np.abs(rng.standard_normal(16)) + 0.1
    edge = vector_dd_from_dense(mgr4, values)
    assert vector_max(edge) == pytest.approx(values.max(), rel=1e-9)
    s, s2 = vector_moments(edge, 4)
    assert s == pytest.approx(values.sum(), rel=1e-9)
    assert s2 == pytest.approx((values**2).sum(), rel=1e-9)


def test_nzr_statistics_uniform_gate(mgr4):
    stats = nzr_statistics(mgr4, gate_matrix_dd(mgr4, Gate.make("h", [1])))
    assert stats["mean"] == pytest.approx(2.0)
    assert stats["cv"] == pytest.approx(0.0, abs=1e-12)
    assert stats["max"] == pytest.approx(2.0)


def test_nzr_statistics_nonuniform():
    m = np.array([[1, 1], [0, 1]], dtype=complex)
    mgr = DDManager(1)
    stats = nzr_statistics(mgr, matrix_dd_from_dense(mgr, m))
    assert stats["mean"] == pytest.approx(1.5)
    assert stats["cv"] > 0


def test_diagonal_classification(mgr4):
    assert is_diagonal_dd(gate_matrix_dd(mgr4, Gate.make("rz", [0], [0.4])))
    assert is_diagonal_dd(gate_matrix_dd(mgr4, Gate.make("cz", [0, 1])))
    assert not is_diagonal_dd(gate_matrix_dd(mgr4, Gate.make("x", [0])))
    assert not is_diagonal_dd(gate_matrix_dd(mgr4, Gate.make("h", [0])))


def test_permutation_classification(mgr4):
    assert is_permutation_like(mgr4, gate_matrix_dd(mgr4, Gate.make("x", [0])))
    assert is_permutation_like(mgr4, gate_matrix_dd(mgr4, Gate.make("cx", [1, 2])))
    assert is_permutation_like(mgr4, gate_matrix_dd(mgr4, Gate.make("rz", [0], [0.1])))
    assert not is_permutation_like(mgr4, gate_matrix_dd(mgr4, Gate.make("h", [0])))


def test_fused_diagonal_cost_stays_one(mgr4):
    """Step 1 of the fusion rationale: diagonal x permutation stays cost 1."""
    cz = gate_matrix_dd(mgr4, Gate.make("cz", [0, 1]))
    cx = gate_matrix_dd(mgr4, Gate.make("cx", [1, 2]))
    fused = mgr4.mm_multiply(cz, cx)
    assert max_nzr(mgr4, fused) == 1
