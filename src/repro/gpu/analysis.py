"""Timeline analysis: critical path and slack.

Given a scheduled :class:`~repro.gpu.engine.Timeline`, find the chain of
tasks that determines the makespan (dependencies *and* engine-FIFO
constraints both count as precedence) and the slack of every other task —
the standard questions when deciding whether more overlap or faster kernels
would help a pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError
from .engine import Task, Timeline


@dataclass(frozen=True)
class CriticalPath:
    """The makespan-determining chain, in execution order."""

    tasks: tuple[Task, ...]
    length: float

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tasks)

    def engine_share(self) -> dict[str, float]:
        """Fraction of the critical path spent on each engine."""
        shares: dict[str, float] = {}
        for task in self.tasks:
            shares[task.engine] = shares.get(task.engine, 0.0) + task.duration
        if self.length > 0:
            shares = {k: v / self.length for k, v in shares.items()}
        return shares


def _predecessors(timeline: Timeline) -> dict[int, list[int]]:
    """Explicit dependencies plus the engine-FIFO predecessor."""
    preds: dict[int, list[int]] = {t.tid: list(t.deps) for t in timeline.tasks}
    by_engine: dict[str, list[Task]] = {}
    for task in timeline.tasks:
        by_engine.setdefault(task.engine, []).append(task)
    for tasks in by_engine.values():
        tasks.sort(key=lambda t: (t.start, t.tid))
        for prev, nxt in zip(tasks, tasks[1:]):
            preds[nxt.tid].append(prev.tid)
    return preds


def critical_path(timeline: Timeline) -> CriticalPath:
    """Walk back from the last-finishing task through binding predecessors.

    A predecessor is *binding* when the task started exactly when it ended
    (within tolerance); ties prefer explicit dependencies over FIFO order.
    """
    if not timeline.tasks:
        return CriticalPath(tasks=(), length=0.0)
    index = {t.tid: t for t in timeline.tasks}
    for task in timeline.tasks:
        if task.start < 0:
            raise DeviceError(f"task {task.name!r} is not scheduled")
    preds = _predecessors(timeline)
    current = max(timeline.tasks, key=lambda t: t.end)
    chain = [current]
    while True:
        binding = None
        for pid in preds[current.tid]:
            pred = index[pid]
            if abs(pred.end - current.start) < 1e-12:
                if binding is None or pid in current.deps:
                    binding = pred
        if binding is None:
            break
        chain.append(binding)
        current = binding
    chain.reverse()
    return CriticalPath(tasks=tuple(chain), length=chain[-1].end - chain[0].start)


def slack(timeline: Timeline) -> dict[int, float]:
    """Per-task slack: how much later a task could finish without moving the
    makespan, given successors' start times (local slack)."""
    succs: dict[int, list[Task]] = {t.tid: [] for t in timeline.tasks}
    preds = _predecessors(timeline)
    index = {t.tid: t for t in timeline.tasks}
    for task in timeline.tasks:
        for pid in preds[task.tid]:
            succs[pid].append(task)
    makespan = timeline.makespan
    out: dict[int, float] = {}
    for task in timeline.tasks:
        if succs[task.tid]:
            limit = min(s.start for s in succs[task.tid])
        else:
            limit = makespan
        out[task.tid] = max(limit - task.end, 0.0)
    return out
