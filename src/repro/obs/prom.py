"""Prometheus text-format export of a :class:`~repro.obs.metrics.Metrics`
snapshot.

:func:`prometheus_text` renders counters, gauges, and quantile histograms
in the Prometheus exposition format (text version 0.0.4): counters and
gauges as single samples, histograms as cumulative ``_bucket{le="..."}``
series plus ``_sum``/``_count`` — the shape ``histogram_quantile()``
consumes.  Labeled metric families (``name{priority="2"}``) become real
Prometheus labels.

:func:`parse_prometheus_text` is the deliberately minimal inverse used by
the tests and the CI ``slo-smoke`` job: it either returns the parsed
samples or raises :class:`ValueError` on the first malformed line, so a
broken exporter cannot scrape clean.
"""

from __future__ import annotations

import math
import re
from pathlib import Path

from .metrics import BUCKET_LABELS, split_labels

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _sanitize(name: str) -> str:
    """A valid Prometheus metric name: dots and dashes become
    underscores."""
    return _NAME_OK.sub("_", name)


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(key)}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{{{inner}}}"


def prometheus_text(snapshot: dict, prefix: str = "repro_") -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    ``snapshot`` is :meth:`Metrics.snapshot` output.  Family ``# TYPE``
    headers are emitted once per family; histogram buckets are cumulative
    and always end with the mandatory ``le="+Inf"`` sample.  Example::

        text = prometheus_text(get_metrics().snapshot())
        assert text == "" or text.endswith("\\n")
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(family: str, kind: str) -> None:
        if family not in typed:
            typed.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for kind, section in (("counter", "counters"), ("gauge", "gauges")):
        for name in sorted(snapshot.get(section, {})):
            family, labels = split_labels(name)
            family = prefix + _sanitize(family)
            header(family, kind)
            lines.append(
                f"{family}{_labels_text(labels)} "
                f"{_fmt(snapshot[section][name])}"
            )

    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        family, labels = split_labels(name)
        family = prefix + _sanitize(family)
        header(family, "histogram")
        cumulative = 0
        buckets = hist.get("buckets", {})
        for label in BUCKET_LABELS:
            if label == "+Inf":
                continue
            count = buckets.get(label, 0)
            if not count:
                continue
            cumulative += count
            le = dict(labels, le=label)
            lines.append(
                f"{family}_bucket{_labels_text(le)} {cumulative}"
            )
        le = dict(labels, le="+Inf")
        lines.append(f"{family}_bucket{_labels_text(le)} {hist['count']}")
        lines.append(
            f"{family}_sum{_labels_text(labels)} {_fmt(hist['sum'])}"
        )
        lines.append(
            f"{family}_count{_labels_text(labels)} {hist['count']}"
        )

    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path, snapshot: dict, prefix: str = "repro_") -> Path:
    """Serialize :func:`prometheus_text` to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(snapshot, prefix=prefix))
    return path


def parse_prometheus_text(text: str) -> dict:
    """Minimal strict parser for the exposition format.

    Returns ``{"samples": {name: [(labels, value), ...]}, "types":
    {name: kind}}``; raises :class:`ValueError` on the first malformed
    line, on a sample preceding its family's ``# TYPE``, or on a
    histogram whose cumulative buckets decrease.  Example::

        doc = parse_prometheus_text('# TYPE a counter\\na 1.0\\n')
        assert doc["samples"]["a"] == [({}, 1.0)]
    """
    samples: dict[str, list] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {parts[3]!r}"
                    )
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels = dict(_LABEL_PAIR.findall(match.group("labels") or ""))
        raw = match.group("value")
        try:
            value = float(raw.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {raw!r}"
            ) from None
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if family not in types and name not in types:
            raise ValueError(
                f"line {lineno}: sample {name!r} precedes its # TYPE line"
            )
        samples.setdefault(name, []).append((labels, value))

    for name, entries in samples.items():
        if not name.endswith("_bucket"):
            continue
        by_series: dict[tuple, list] = {}
        for labels, value in entries:
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            by_series.setdefault(key, []).append(
                (float(labels["le"].replace("+Inf", "inf")), value)
            )
        for key, buckets in by_series.items():
            ordered = sorted(buckets)
            values = [v for _, v in ordered]
            if values != sorted(values):
                raise ValueError(
                    f"{name}{dict(key)}: cumulative buckets decrease"
                )
    return {"samples": samples, "types": types}
