"""Benchmark circuit generators (MQT-Bench-style families + textbook algorithms)."""

from .algorithms import deutsch_jozsa, grover, qaoa_maxcut, qpe, wstate

from .families import (
    FAMILIES,
    ghz,
    graphstate,
    make_circuit,
    portfolio,
    qft,
    qnn,
    random_circuit,
    routing,
    supremacy,
    tsp,
    vqe,
)
from .twolocal import (
    compose,
    full_pairs,
    linear_pairs,
    real_amplitudes,
    ring_pairs,
    two_local,
    zz_feature_map,
)

__all__ = [
    "FAMILIES",
    "deutsch_jozsa",
    "grover",
    "qaoa_maxcut",
    "qpe",
    "wstate",
    "compose",
    "full_pairs",
    "ghz",
    "graphstate",
    "linear_pairs",
    "make_circuit",
    "portfolio",
    "qft",
    "qnn",
    "random_circuit",
    "real_amplitudes",
    "ring_pairs",
    "routing",
    "supremacy",
    "tsp",
    "two_local",
    "vqe",
    "zz_feature_map",
]
