"""Table 4 — task-graph evaluation: BQCS runtime of BQSim vs cuQuantum
running with BQSim's fusion (cuQuantum+B) and with Aer's fusion
(cuQuantum+Q).

The comparison isolates the execution strategy: all three use fused gates,
but cuQuantum's batched API only accepts *dense* matrices with synchronous
per-gate launches.  BQSim's fused gates span many qubits, so cuQuantum+B
must materialize huge dense blocks — several runs exceed device memory,
matching the "-" entries in the paper.
"""

from __future__ import annotations

import math

from ...sim import BQSimSimulator
from ..runner import make_cuquantum_variants
from ..tables import fmt_ms, fmt_speedup, geomean, print_table
from ..workloads import PAPER_TABLE4_MS, suite


#: rows skipped at paper scale: BQSim's and cuQuantum+B's plans need
#: DD-based fusion, which takes hours of pure-Python host time on the
#: largest QNNs (seconds in the paper's C++)
PAPER_SKIP_ROWS = {("qnn", 19), ("qnn", 21)}


def run(scale: str = "small", execute: bool | None = None) -> list[dict]:
    workloads, spec, default_execute = suite(scale)
    execute = default_execute if execute is None else execute
    variants = make_cuquantum_variants()
    bqsim = BQSimSimulator()
    rows = []
    for workload in workloads:
        if scale == "paper" and workload.key in PAPER_SKIP_ROWS:
            continue
        circuit = workload.build()
        result = bqsim.run(circuit, spec, execute=execute)
        # the BQCS runtime excludes the one-time fusion/conversion stages
        bq_time = result.breakdown["simulation"]
        row = {
            "family": workload.family,
            "num_qubits": workload.num_qubits,
            "bqsim_s": bq_time,
            "paper_ms": PAPER_TABLE4_MS.get(workload.key),
        }
        for name, simulator in variants.items():
            vres = simulator.run(circuit, spec, execute=execute)
            row[f"{name}_s"] = vres.modeled_time
            row[f"{name}_failed"] = bool(vres.stats.get("failed"))
            row[f"speedup_{name}"] = (
                vres.modeled_time / bq_time if bq_time > 0 else float("inf")
            )
        rows.append(row)
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    table = []
    for r in rows:
        table.append(
            [
                r["family"],
                r["num_qubits"],
                fmt_ms(r["cuquantum+Q_s"]),
                "-" if r["cuquantum+B_failed"] else fmt_ms(r["cuquantum+B_s"]),
                fmt_ms(r["bqsim_s"]),
                fmt_speedup(r["speedup_cuquantum+Q"]),
                "-"
                if r["cuquantum+B_failed"]
                else fmt_speedup(r["speedup_cuquantum+B"]),
                "-"
                if r["paper_ms"] is None
                else f"{r['paper_ms'][0] / r['paper_ms'][2]:.2f}x",
            ]
        )
    print_table(
        f"Table 4: BQCS runtime in ms (scale={scale})",
        [
            "circuit", "n", "cuQuantum+Q", "cuQuantum+B", "BQSim",
            "vs +Q", "vs +B", "paper vs +Q",
        ],
        table,
    )
    q_speedups = [r["speedup_cuquantum+Q"] for r in rows]
    b_speedups = [
        r["speedup_cuquantum+B"]
        for r in rows
        if not r["cuquantum+B_failed"] and math.isfinite(r["speedup_cuquantum+B"])
    ]
    print(
        f"geomean speedups: vs cuQuantum+Q {geomean(q_speedups):.2f}x, "
        f"vs cuQuantum+B {geomean(b_speedups):.2f}x "
        "(paper: 3.62x / 407.42x)"
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
