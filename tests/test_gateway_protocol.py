"""Wire-protocol tests: codecs, envelopes, and the untrusted front door.

The hard requirement here is that *no* malformed, oversized, or hostile
payload ever produces a traceback or an untyped failure — every refusal
is a :class:`ProtocolError` with a stable code, mirroring the error-path
style of QASM importers: each bad input asserts both the exception type
and the salient part of its message.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.circuit import to_qasm
from repro.circuit.generators import make_circuit
from repro.circuit.inputs import random_batch
from repro.gateway.protocol import (
    MAX_GATES,
    MAX_INPUTS,
    MAX_LINE_BYTES,
    MAX_QASM_BYTES,
    MAX_QUBITS,
    PROTOCOL_VERSION,
    ProtocolError,
    circuit_from_wire,
    circuit_to_wire,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
    error_response,
    inputs_from_wire,
    ok_response,
)


def frame(**fields) -> bytes:
    return encode_frame({"v": PROTOCOL_VERSION, **fields})


class TestFrames:
    def test_roundtrip(self):
        line = frame(op="ping", id=3)
        decoded = decode_frame(line)
        assert decoded["op"] == "ping" and decoded["id"] == 3

    def test_not_json(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"{nope\n")
        assert err.value.code == "BAD_ENVELOPE"
        assert "not valid JSON" in str(err.value)

    def test_not_an_object(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"[1, 2]\n")
        assert err.value.code == "BAD_ENVELOPE"
        assert "JSON object" in str(err.value)

    def test_binary_garbage(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b"\x00\xff\xfe\x01")
        assert err.value.code == "BAD_ENVELOPE"

    def test_wrong_version(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(encode_frame({"v": 99, "op": "ping"}))
        assert err.value.code == "UNSUPPORTED_VERSION"
        assert err.value.extra["supported"] == PROTOCOL_VERSION

    def test_missing_version(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(b'{"op": "ping"}\n')
        assert err.value.code == "UNSUPPORTED_VERSION"

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(frame(id=1))
        assert err.value.code == "BAD_ENVELOPE"
        assert "'op'" in str(err.value)

    def test_non_string_op(self):
        with pytest.raises(ProtocolError) as err:
            decode_frame(frame(op=42))
        assert err.value.code == "BAD_ENVELOPE"

    def test_oversized_line(self):
        line = b'{"pad": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError) as err:
            decode_frame(line)
        assert err.value.code == "OVERSIZED"
        assert err.value.extra["limit"] == MAX_LINE_BYTES

    def test_responses_echo_id(self):
        assert ok_response(7, x=1) == {
            "v": PROTOCOL_VERSION, "id": 7, "ok": True, "x": 1
        }
        refusal = error_response(7, ProtocolError("UNKNOWN_OP", "nope"))
        assert refusal["ok"] is False
        assert refusal["error"]["code"] == "UNKNOWN_OP"

    def test_unknown_code_is_a_bug(self):
        with pytest.raises(ValueError):
            ProtocolError("NOT_A_CODE", "x")


class TestArrayCodec:
    def test_bit_exact_roundtrip(self):
        states = random_batch(4, 6, 3).states
        wire = encode_array(states)
        # the wire form survives JSON (the whole point)
        recovered = decode_array(json.loads(json.dumps(wire)))
        assert recovered.dtype == np.complex128
        assert np.array_equal(recovered, states)  # bit-exact, not allclose

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ProtocolError) as err:
            decode_array({"dtype": "f8", "shape": [2], "b64": ""})
        assert err.value.code == "BAD_INPUTS"

    def test_rejects_bad_base64(self):
        with pytest.raises(ProtocolError) as err:
            decode_array({"dtype": "c16", "shape": [1, 1], "b64": "!!!"})
        assert err.value.code == "BAD_INPUTS"
        assert "base64" in str(err.value)

    def test_rejects_size_mismatch(self):
        wire = encode_array(np.zeros((2, 2), dtype=complex))
        wire["shape"] = [4, 4]  # lies about its size
        with pytest.raises(ProtocolError) as err:
            decode_array(wire)
        assert err.value.code == "BAD_INPUTS"

    def test_rejects_bad_shapes(self):
        for shape in ([], [0], [-1, 2], ["x"], "nope", None):
            with pytest.raises(ProtocolError):
                decode_array({"dtype": "c16", "shape": shape, "b64": ""})


class TestCircuitCodec:
    def test_qasm_roundtrip(self):
        circuit = make_circuit("qft", 4)
        recovered = circuit_from_wire(circuit_to_wire(circuit))
        assert recovered.num_qubits == 4
        assert to_qasm(recovered) == to_qasm(circuit)

    def test_family_spec(self):
        circuit = circuit_from_wire(
            {"family": "ghz", "num_qubits": 5, "seed": 0}
        )
        assert circuit.num_qubits == 5

    def test_bad_qasm_is_typed_with_line(self):
        with pytest.raises(ProtocolError) as err:
            circuit_from_wire(
                {"qasm": "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n"}
            )
        assert err.value.code == "BAD_QASM"
        assert err.value.extra.get("line") == 3

    def test_truncated_qasm(self):
        with pytest.raises(ProtocolError) as err:
            circuit_from_wire({"qasm": "OPENQASM 2.0"})
        assert err.value.code == "BAD_QASM"

    def test_oversized_qasm_refused_before_parse(self):
        blob = "OPENQASM 2.0;" + "/" * MAX_QASM_BYTES
        with pytest.raises(ProtocolError) as err:
            circuit_from_wire({"qasm": blob})
        assert err.value.code == "OVERSIZED"

    def test_too_many_qubits_via_family(self):
        with pytest.raises(ProtocolError) as err:
            circuit_from_wire(
                {"family": "ghz", "num_qubits": MAX_QUBITS + 1}
            )
        assert err.value.code == "OVERSIZED"

    def test_too_many_qubits_via_qasm(self):
        qasm = f"OPENQASM 2.0;\nqreg q[{MAX_QUBITS + 1}];\n"
        with pytest.raises(ProtocolError) as err:
            circuit_from_wire({"qasm": qasm})
        assert err.value.code == "OVERSIZED"

    def test_unknown_family(self):
        with pytest.raises(ProtocolError) as err:
            circuit_from_wire({"family": "warp-drive", "num_qubits": 3})
        assert err.value.code == "BAD_CIRCUIT"
        assert "warp-drive" in str(err.value)

    def test_malformed_specs(self):
        for wire in (
            None, 42, "ghz", [], {},
            {"family": 7, "num_qubits": 3},
            {"family": "ghz"},
            {"family": "ghz", "num_qubits": "three"},
            {"family": "ghz", "num_qubits": 0},
            {"family": "ghz", "num_qubits": 3, "seed": "x"},
            {"qasm": 42},
        ):
            with pytest.raises(ProtocolError):
                circuit_from_wire(wire)

    def test_gate_limit_exists(self):
        # sanity: the bound is enforced after parse (tiny limit circuits
        # are impractical to build here, so check the constant wiring)
        assert MAX_GATES >= 1000


class TestInputsCodec:
    def test_absent_means_server_side_batch(self):
        circuit = make_circuit("ghz", 3)
        assert inputs_from_wire(None, circuit) is None

    def test_roundtrip(self):
        circuit = make_circuit("ghz", 3)
        states = random_batch(3, 4, 0).states
        batch = inputs_from_wire(encode_array(states), circuit)
        assert batch.batch_size == 4
        assert np.array_equal(batch.states, states)

    def test_wrong_dimension_for_circuit(self):
        circuit = make_circuit("ghz", 3)
        states = random_batch(4, 2, 0).states  # 16 rows, needs 8
        with pytest.raises(ProtocolError) as err:
            inputs_from_wire(encode_array(states), circuit)
        assert err.value.code == "BAD_INPUTS"
        assert "rows" in str(err.value)

    def test_too_wide(self):
        circuit = make_circuit("ghz", 2)
        states = np.zeros((4, MAX_INPUTS + 1), dtype=complex)
        with pytest.raises(ProtocolError) as err:
            inputs_from_wire(encode_array(states), circuit)
        assert err.value.code == "OVERSIZED"

    def test_not_2d(self):
        circuit = make_circuit("ghz", 2)
        with pytest.raises(ProtocolError) as err:
            inputs_from_wire(
                encode_array(np.zeros(4, dtype=complex)), circuit
            )
        assert err.value.code == "BAD_INPUTS"
