"""Decision-diagram nodes and edges (QMDD-style).

Two node kinds exist: :class:`MNode` for matrix DDs (four children, indexed
``row_bit * 2 + col_bit``) and :class:`VNode` for vector DDs (two children,
indexed by the row bit).  An :class:`Edge` couples a node pointer with a
complex weight; ``node is None`` denotes the constant-one terminal, and a
weight of exactly ``0`` denotes the constant-zero edge (which always points
at the terminal for canonicity).

This package keeps *full chains*: a non-zero edge entering level ``l`` points
at a node whose level is exactly ``l``, so operands of every binary operation
are level-aligned.  Level skipping (as in some QMDD variants) is deliberately
not used; the only cross-level edges are zero edges.
"""

from __future__ import annotations

from typing import NamedTuple, Union

#: decimal places used when canonicalizing complex weights for hashing
WEIGHT_DECIMALS = 10
WEIGHT_TOL = 10.0**-WEIGHT_DECIMALS


def weight_key(w: complex) -> tuple[float, float]:
    """Canonical hash key for an edge weight (tolerance-rounded)."""
    r = round(w.real, WEIGHT_DECIMALS)
    i = round(w.imag, WEIGHT_DECIMALS)
    # avoid the -0.0 / +0.0 split
    return (r + 0.0, i + 0.0)


class Edge(NamedTuple):
    """A weighted pointer to a DD node (``None`` = terminal)."""

    node: Union["MNode", "VNode", None]
    weight: complex

    @property
    def is_zero(self) -> bool:
        return self.weight == 0

    @property
    def is_terminal(self) -> bool:
        return self.node is None

    @property
    def level(self) -> int:
        """Level of the pointed-to node; terminals live at level -1."""
        return -1 if self.node is None else self.node.level

    def scaled(self, factor: complex) -> "Edge":
        if factor == 0:
            return ZERO_EDGE
        return Edge(self.node, self.weight * factor)


ZERO_EDGE = Edge(None, 0.0)
ONE_EDGE = Edge(None, 1.0)


class MNode:
    """Matrix-DD node: children order (c00, c01, c10, c11) = row*2+col."""

    __slots__ = ("level", "children", "nid")

    def __init__(self, level: int, children: tuple[Edge, Edge, Edge, Edge], nid: int):
        self.level = level
        self.children = children
        self.nid = nid

    def __repr__(self) -> str:
        return f"<MNode#{self.nid} L{self.level}>"


class VNode:
    """Vector-DD node: children order (c0, c1) = the row bit at this level."""

    __slots__ = ("level", "children", "nid")

    def __init__(self, level: int, children: tuple[Edge, Edge], nid: int):
        self.level = level
        self.children = children
        self.nid = nid

    def __repr__(self) -> str:
        return f"<VNode#{self.nid} L{self.level}>"
