"""Tests for the extended DD algebra."""

import numpy as np
import pytest

from repro.circuit.gates import Gate
from repro.circuit.generators import random_circuit
from repro.dd import (
    DDManager,
    adjoint,
    circuit_matrix_dd,
    expectation,
    gate_matrix_dd,
    hilbert_schmidt,
    matrix_dd_from_dense,
    matrix_kron,
    matrix_to_dense,
    process_fidelity,
    trace,
    vector_dd_from_dense,
    vector_inner,
)
from repro.errors import DDError


@pytest.fixture
def dense_pair(rng):
    a = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
    b = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
    return a, b


def test_adjoint_matches_dense(dense_pair):
    a, _ = dense_pair
    mgr = DDManager(3)
    ea = matrix_dd_from_dense(mgr, a)
    assert np.allclose(matrix_to_dense(adjoint(mgr, ea), 3), a.conj().T, atol=1e-9)


def test_adjoint_is_involution(dense_pair):
    a, _ = dense_pair
    mgr = DDManager(3)
    ea = matrix_dd_from_dense(mgr, a)
    twice = adjoint(mgr, adjoint(mgr, ea))
    assert np.allclose(matrix_to_dense(twice, 3), a, atol=1e-9)


def test_adjoint_of_unitary_is_inverse(mgr4):
    gate = Gate.make("u3", [1], [0.4, 0.9, -0.3])
    e = gate_matrix_dd(mgr4, gate)
    prod = mgr4.mm_multiply(adjoint(mgr4, e), e)
    assert np.allclose(matrix_to_dense(prod, 4), np.eye(16), atol=1e-9)


def test_trace_matches_dense(dense_pair):
    a, _ = dense_pair
    mgr = DDManager(3)
    assert trace(matrix_dd_from_dense(mgr, a), 3) == pytest.approx(np.trace(a))


def test_trace_of_identity():
    mgr = DDManager(5)
    assert trace(mgr.identity(), 5) == pytest.approx(32)


def test_hilbert_schmidt_matches_dense(dense_pair):
    a, b = dense_pair
    mgr = DDManager(3)
    ea, eb = matrix_dd_from_dense(mgr, a), matrix_dd_from_dense(mgr, b)
    want = np.trace(a.conj().T @ b)
    assert hilbert_schmidt(mgr, ea, eb) == pytest.approx(want)


def test_process_fidelity_detects_equivalence():
    circuit = random_circuit(4, 15, seed=5)
    mgr = DDManager(4)
    e = circuit_matrix_dd(mgr, circuit.gates)
    phased = e.scaled(np.exp(0.7j))
    assert process_fidelity(mgr, e, phased) == pytest.approx(1.0)
    other = circuit_matrix_dd(mgr, random_circuit(4, 15, seed=6).gates)
    assert process_fidelity(mgr, e, other) < 0.99


def test_matrix_kron_matches_dense(rng):
    upper = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
    lower = rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
    mgr_u, mgr_l, mgr_out = DDManager(2), DDManager(1), DDManager(3)
    eu = matrix_dd_from_dense(mgr_u, upper)
    el = matrix_dd_from_dense(mgr_l, lower)
    got = matrix_to_dense(matrix_kron(mgr_out, eu, el, 1), 3)
    assert np.allclose(got, np.kron(upper, lower), atol=1e-9)


def test_matrix_kron_validates_span(rng):
    lower = np.diag([1.0, 0.0]).astype(complex)  # collapses below level 0? no
    mgr_l, mgr_out = DDManager(1), DDManager(3)
    el = matrix_dd_from_dense(mgr_l, lower)
    eu = matrix_dd_from_dense(DDManager(2), np.eye(4, dtype=complex))
    # wrong lower_qubits triggers the span check
    with pytest.raises(DDError, match="span"):
        matrix_kron(mgr_out, eu, el, 2)


def test_vector_inner_matches_dense(rng):
    u = rng.standard_normal(16) + 1j * rng.standard_normal(16)
    w = rng.standard_normal(16) + 1j * rng.standard_normal(16)
    mgr = DDManager(4)
    eu, ew = vector_dd_from_dense(mgr, u), vector_dd_from_dense(mgr, w)
    assert vector_inner(eu, ew) == pytest.approx(np.vdot(u, w))
    assert vector_inner(eu, eu).real == pytest.approx(np.vdot(u, u).real)


def test_expectation_matches_dense(rng):
    mgr = DDManager(3)
    m = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
    m = m + m.conj().T  # hermitian observable
    v = rng.standard_normal(8) + 1j * rng.standard_normal(8)
    v /= np.linalg.norm(v)
    em = matrix_dd_from_dense(mgr, m)
    ev = vector_dd_from_dense(mgr, v)
    assert expectation(mgr, em, ev) == pytest.approx(np.vdot(v, m @ v))
