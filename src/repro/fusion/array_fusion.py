"""Qiskit-Aer-style array-based gate fusion (Section 2.3's baseline).

Aer fuses gates into dense ``k``-qubit blocks.  The model here maintains a
set of *open blocks* with pairwise-disjoint qubit supports; each incoming
gate merges every open block it touches (gates on disjoint qubits commute,
so blocks may absorb later gates across unrelated ones) as long as the
merged support stays within ``max_fused_qubits``, otherwise the touched
blocks are closed and a fresh block opens.

Calibration: with the default cap of 3 qubits this reproduces the paper's
Table 3 Qiskit-Aer column exactly on the TwoLocal-family circuits
(VQE n=12 -> 88 MACs/amplitude, TSP n=16 -> 300, Routing n=12 -> 132,
Graph state n=16 -> 64).  Because fused blocks are dense arrays, every
padded zero is computed — the structural reason array fusion trails
DD-based fusion.

The produced :class:`~repro.fusion.plan.FusionPlan` reports the *dense*
cost per fused gate (``2^k`` MACs per amplitude) while carrying the exact
DD matrix for numeric simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit.circuit import Circuit
from ..dd.build import circuit_matrix_dd, gate_matrix_dd
from ..dd.manager import DDManager
from ..errors import FusionError
from .cost import dense_gate_cost
from .plan import FusedGate, FusionPlan

DEFAULT_MAX_FUSED_QUBITS = 3


@dataclass
class _Block:
    """One open fusion block: gate indices plus its qubit support."""

    indices: list[int] = field(default_factory=list)
    support: set[int] = field(default_factory=set)


def aer_fusion(
    mgr: DDManager,
    circuit: Circuit,
    max_fused_qubits: int = DEFAULT_MAX_FUSED_QUBITS,
) -> FusionPlan:
    """Array-based fusion into dense blocks of bounded qubit support."""
    if circuit.num_qubits != mgr.num_qubits:
        raise FusionError("manager/circuit width mismatch")
    if max_fused_qubits < 1:
        raise FusionError("max_fused_qubits must be positive")

    open_blocks: list[_Block] = []
    closed: list[_Block] = []
    for index, gate in enumerate(circuit.gates):
        qubits = set(gate.all_qubits)
        touched = [b for b in open_blocks if b.support & qubits]
        # absorb the most recently opened touched blocks while the merged
        # support still fits; close the rest (every touched block is either
        # merged or closed, which keeps emission order circuit-equivalent)
        union = set(qubits)
        absorbed: list[_Block] = []
        for block in reversed(touched):
            if len(union | block.support) <= max_fused_qubits:
                union |= block.support
                absorbed.append(block)
            else:
                open_blocks.remove(block)
                closed.append(block)
        merged = _Block(
            indices=sorted(i for b in absorbed for i in b.indices) + [index],
            support=union,
        )
        for block in absorbed:
            open_blocks.remove(block)
        open_blocks.append(merged)
    # emit blocks in closure order: a block closes strictly before any later
    # gate on its qubits is placed, so closure order is circuit-equivalent;
    # blocks still open at the end are pairwise disjoint and may follow in
    # any order
    closed.extend(sorted(open_blocks, key=lambda b: b.indices[0]))

    fused: list[FusedGate] = []
    for block in closed:
        dd = circuit_matrix_dd(mgr, [circuit.gates[i] for i in block.indices])
        fused.append(
            FusedGate(
                dd=dd,
                cost=1 << len(block.support),  # dense k-qubit block
                gate_indices=tuple(block.indices),
            )
        )
    return FusionPlan(
        num_qubits=circuit.num_qubits,
        gates=tuple(fused),
        algorithm="aer",
        source_gate_count=len(circuit.gates),
    )


def cuquantum_plan(mgr: DDManager, circuit: Circuit) -> FusionPlan:
    """The no-fusion dense baseline: one dense batched apply per gate.

    cuQuantum's batched-apply path pads every gate to at least two qubits,
    so each gate costs 4 MACs per amplitude (Table 3's cuQuantum column is
    exactly ``4 * #gates * 2^n`` per input).
    """
    fused = tuple(
        FusedGate(
            dd=gate_matrix_dd(mgr, gate),
            cost=dense_gate_cost(gate),
            gate_indices=(index,),
        )
        for index, gate in enumerate(circuit.gates)
    )
    return FusionPlan(
        num_qubits=circuit.num_qubits,
        gates=fused,
        algorithm="cuquantum-dense",
        source_gate_count=len(circuit.gates),
    )
