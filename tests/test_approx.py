"""Tests for the fidelity-budgeted approximate tier (:mod:`repro.approx`).

Covers the pruning pass itself (edge pruning, the fidelity ledger and
its end-to-end guarantee), the exactness contract at budget 1.0 across
every simulator, the serving-layer wiring (group keys, achieved
fidelity, ``stats["approx"]``, SLO attainment), plan-archive
persistence, and the regression test that the *documented* coalescing
group-key attributes match what :meth:`group_key_for` actually hashes.
"""

import numpy as np
import pytest

from repro.approx import (
    FidelityLedger,
    GateApproximation,
    THRESHOLD_LADDER,
    gate_fidelity,
    prune_edge,
    prune_plan,
)
from repro.bench.runner import make_simulators
from repro.circuit.generators import make_circuit
from repro.circuit.inputs import random_batch
from repro.dd.build import gate_matrix_dd
from repro.dd.export import count_nodes
from repro.dd.manager import DDManager
from repro.errors import ApproximationError, ServiceError
from repro.fusion.bqcs import bqcs_fusion
from repro.resilience.failover import rescue_queued
from repro.service import BatchSimulationService
from repro.sim.base import BatchSpec
from repro.sim.bqsim import BQSimSimulator
from repro.sim.statevector import simulate_batch


# ---------------------------------------------------------------------------
# pruning primitives
# ---------------------------------------------------------------------------

class TestPruneEdge:
    def test_zero_threshold_is_identity(self):
        mgr = DDManager(2)
        circuit = make_circuit("vqe_finetune", 2)
        dd = gate_matrix_dd(mgr, circuit.gates[0])
        pruned, dropped = prune_edge(mgr, dd, 0.0)
        assert pruned == dd and dropped == 0

    def test_small_angle_rotation_prunes_to_diagonal(self):
        mgr = DDManager(1)
        circuit = make_circuit("ghz", 1)  # structural placeholder
        from repro.circuit import Circuit

        c = Circuit(1, name="tiny_ry")
        c.ry(0.02, 0)
        dd = gate_matrix_dd(mgr, c.gates[0])
        pruned, dropped = prune_edge(mgr, dd, 0.05)
        assert dropped == 2  # both off-diagonal branches
        fid = gate_fidelity(mgr, dd, pruned)
        # pruning RY(theta) off-diagonals costs cos^2(theta/2)
        assert fid == pytest.approx(np.cos(0.01) ** 2, abs=1e-12)

    def test_unit_magnitude_weights_never_prune(self):
        mgr = DDManager(3)
        circuit = make_circuit("qft", 3)
        for gate in circuit.gates:
            dd = gate_matrix_dd(mgr, gate)
            _, dropped = prune_edge(mgr, dd, THRESHOLD_LADDER[0])
            assert dropped == 0

    def test_node_count_shrinks(self):
        mgr = DDManager(4)
        plan = bqcs_fusion(mgr, make_circuit("vqe_finetune", 4))
        pruned, ledger = prune_plan(mgr, plan, 0.99)
        assert ledger.pruned_gates > 0
        before = sum(count_nodes(g.dd) for g in plan.gates)
        after = sum(count_nodes(g.dd) for g in pruned.gates)
        assert after < before


class TestFidelityLedger:
    def test_achieved_is_product_of_gate_fidelities(self):
        ledger = FidelityLedger(budget=0.9)
        for i, fid in enumerate((0.99, 0.98)):
            ledger.spend(GateApproximation(
                gate_index=i, threshold=0.1, fidelity=fid,
                nodes_before=4, nodes_after=2,
                edges_before=8, edges_after=4,
                cost_before=4.0, cost_after=2.0, dropped_branches=2,
            ))
        assert ledger.achieved == pytest.approx(0.99 * 0.98)
        assert ledger.pruned_gates == 2
        assert ledger.dropped_branches == 4

    def test_spend_below_budget_raises_and_rolls_back(self):
        ledger = FidelityLedger(budget=0.99)
        overdraft = GateApproximation(
            gate_index=0, threshold=0.5, fidelity=0.5,
            nodes_before=4, nodes_after=2,
            edges_before=8, edges_after=4,
            cost_before=4.0, cost_after=2.0, dropped_branches=2,
        )
        with pytest.raises(ApproximationError):
            ledger.spend(overdraft)
        assert ledger.achieved == 1.0 and ledger.pruned_gates == 0

    def test_bad_budget_rejected(self):
        mgr = DDManager(2)
        plan = bqcs_fusion(mgr, make_circuit("ghz", 2))
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ApproximationError):
                prune_plan(mgr, plan, bad)


# ---------------------------------------------------------------------------
# the guarantee, property-style over a seeded corpus
# ---------------------------------------------------------------------------

CORPUS = [
    ("vqe_finetune", 5), ("vqe_finetune", 7),
    ("vqe", 5), ("supremacy", 5), ("qft", 5), ("ghz", 5),
]
BUDGETS = (0.999, 0.99, 0.9)


@pytest.mark.parametrize("family,n", CORPUS)
def test_achieved_meets_budget_across_corpus(family, n):
    mgr = DDManager(n)
    plan = bqcs_fusion(mgr, make_circuit(family, n))
    for budget in BUDGETS:
        pruned, ledger = prune_plan(mgr, plan, budget)
        assert ledger.achieved >= budget
        assert ledger.budget == budget
        # pruning can only shrink the plan
        assert pruned.total_cost <= plan.total_cost


@pytest.mark.parametrize("budget", BUDGETS)
def test_simulator_reports_achieved_at_least_budget(budget):
    circuit = make_circuit("vqe_finetune", 6)
    sim = BQSimSimulator(fidelity=budget)
    result = sim.run(
        circuit, BatchSpec(num_batches=1, batch_size=4, seed=3),
        execute=True,
    )
    approx = result.stats["approx"]
    assert approx["budget"] == budget
    assert approx["achieved"] >= budget


def test_measured_state_fidelity_tracks_the_ledger():
    """The plan-fidelity guarantee translates to per-column overlaps."""
    circuit = make_circuit("vqe_finetune", 6)
    batch = random_batch(6, 6, 11)
    exact = simulate_batch(circuit, batch)
    sim = BQSimSimulator(fidelity=0.99)
    run = sim.run(
        circuit, BatchSpec(num_batches=1, batch_size=6, seed=0),
        batches=[batch], execute=True,
    )
    approx = run.outputs[0]
    for col in range(exact.shape[1]):
        overlap = abs(np.vdot(exact[:, col], approx[:, col])) ** 2
        overlap /= (np.vdot(approx[:, col], approx[:, col]).real
                    * np.vdot(exact[:, col], exact[:, col]).real)
        assert overlap >= 0.99 - 5e-3


# ---------------------------------------------------------------------------
# budget 1.0 is bit-identical, across every simulator
# ---------------------------------------------------------------------------

def test_budget_one_is_bit_identical_across_simulators():
    circuit = make_circuit("vqe_finetune", 5)
    batch = random_batch(5, 4, 7)
    spec = BatchSpec(num_batches=1, batch_size=4, seed=0)

    plain = make_simulators()
    budgeted = make_simulators(fidelity=1.0)
    for name in plain:
        a = plain[name].run(circuit, spec, batches=[batch], execute=True)
        b = budgeted[name].run(circuit, spec, batches=[batch], execute=True)
        assert np.array_equal(a.outputs[0], b.outputs[0]), name

    # the fifth simulator: the dense statevector reference is the anchor
    reference = simulate_batch(circuit, batch)
    exact_bqsim = budgeted["bqsim"].run(
        circuit, spec, batches=[batch], execute=True
    )
    np.testing.assert_allclose(
        exact_bqsim.outputs[0], reference, atol=1e-10
    )


def test_budget_one_never_records_drift():
    circuit = make_circuit("vqe_finetune", 5)
    sim = BQSimSimulator(fidelity=1.0)
    result = sim.run(
        circuit, BatchSpec(num_batches=1, batch_size=2, seed=0),
        execute=True,
    )
    approx = result.stats["approx"]
    assert approx["achieved"] == 1.0
    assert approx["pruned_gates"] == 0
    assert approx["dropped_branches"] == 0


# ---------------------------------------------------------------------------
# serving layer: group keys, achieved fidelity, stats
# ---------------------------------------------------------------------------

def _batch(n, cols, seed):
    return random_batch(n, cols, seed)


class TestServiceWiring:
    def test_fidelity_classes_never_coalesce(self):
        svc = BatchSimulationService()
        circuit = make_circuit("vqe_finetune", 5)
        exact = svc.submit(circuit, _batch(5, 2, 0))
        apx = svc.submit(circuit, _batch(5, 2, 1), fidelity=0.99)
        apx2 = svc.submit(circuit, _batch(5, 2, 2), fidelity=0.99)
        other = svc.submit(circuit, _batch(5, 2, 3), fidelity=0.9)
        assert exact.group_key != apx.group_key
        assert apx.group_key == apx2.group_key
        assert apx.group_key != other.group_key

    def test_achieved_fidelity_lands_on_the_job(self):
        svc = BatchSimulationService()
        circuit = make_circuit("vqe_finetune", 5)
        job = svc.submit(circuit, _batch(5, 2, 0), fidelity=0.99)
        exact = svc.submit(circuit, _batch(5, 2, 1))
        svc.drain()
        assert job.achieved_fidelity is not None
        assert job.achieved_fidelity >= 0.99
        assert exact.achieved_fidelity == 1.0
        described = job.describe()
        assert described["fidelity"] == 0.99
        assert described["achieved_fidelity"] == job.achieved_fidelity

    def test_stats_approx_block(self):
        svc = BatchSimulationService()
        circuit = make_circuit("vqe_finetune", 5)
        svc.submit(circuit, _batch(5, 2, 0), fidelity=0.99)
        svc.submit(circuit, _batch(5, 2, 1))
        svc.drain()
        block = svc.stats()["approx"]
        assert block["approx_jobs"] == 1
        assert block["exact_jobs"] == 1
        assert block["attainment_rate"] == 1.0
        assert block["pruned_gates"] > 0
        slo = svc.stats()["slo"]
        assert slo["approx_jobs"] == 1
        assert slo["fidelity_attained"] == 1
        assert slo["fidelity_attainment_rate"] == 1.0

    def test_bad_budget_rejected_at_admission(self):
        svc = BatchSimulationService()
        circuit = make_circuit("ghz", 3)
        with pytest.raises(ServiceError):
            svc.submit(circuit, _batch(3, 2, 0), fidelity=0.0)
        with pytest.raises(ServiceError):
            svc.submit(circuit, _batch(3, 2, 0), fidelity=1.5)

    def test_solo_fallback_preserves_achieved_fidelity(self):
        """Regression: an approximate job that completes via the process
        pool's per-job isolation fallback still reports its achieved
        fidelity (the solo runs carry the ledger when the mega-batch
        degrades), so the SLO tracker never counts it as fidelity-missed.
        """
        from repro.circuit import InputBatch
        from repro.service import JobStatus

        svc = BatchSimulationService(
            num_workers=1,
            parallelism="process",
            simulator_kwargs={"health": "fail"},
        )
        circuit = make_circuit("vqe_finetune", 5)
        try:
            good = svc.submit(circuit, _batch(5, 2, 0), fidelity=0.99)
            poison = svc.submit(
                circuit,
                InputBatch(np.full((32, 2), np.nan, dtype=np.complex128)),
                fidelity=0.99,
            )
            svc.drain()
        finally:
            svc.close()
        assert good.status is JobStatus.DONE and good.solo_retry
        assert poison.status is JobStatus.FAILED
        assert good.achieved_fidelity is not None
        assert good.achieved_fidelity >= 0.99
        slo = svc.stats()["slo"]
        assert slo["fidelity_attained"] == 1

    def test_rescued_jobs_keep_their_fidelity_class(self):
        svc = BatchSimulationService()
        circuit = make_circuit("vqe_finetune", 5)
        svc.submit(circuit, _batch(5, 2, 0), fidelity=0.99)
        rescued = rescue_queued(svc, "s0")
        assert len(rescued) == 1
        assert rescued[0].fidelity == 0.99


class TestGroupKeyDocumentation:
    """Regression: the documented group-key attributes are the real ones.

    ``docs`` and the coalescer module docstring promise the key covers
    circuit structure, compilation settings, per-job options, and the
    fidelity class — each must actually change the key, and nothing
    else submitted alongside (priority, deadline) may.
    """

    def test_each_documented_attribute_partitions(self):
        svc = BatchSimulationService()
        circuit = make_circuit("vqe_finetune", 5)
        base = svc.group_key_for(circuit)

        # circuit structure
        assert svc.group_key_for(make_circuit("qft", 5)) != base
        # per-job options
        assert svc.group_key_for(circuit, options=("opt",)) != base
        # fidelity class (and 1.0 folds back into the exact class)
        assert svc.group_key_for(circuit, fidelity=0.99) != base
        assert svc.group_key_for(circuit, fidelity=1.0) == base
        assert (svc.group_key_for(circuit, fidelity=0.99)
                != svc.group_key_for(circuit, fidelity=0.9))
        # compilation settings
        other = BatchSimulationService(
            simulator_kwargs={"max_fused_cost": 2}
        )
        assert other.group_key_for(circuit) != base

    def test_scheduling_attributes_do_not_partition(self):
        svc = BatchSimulationService()
        circuit = make_circuit("vqe_finetune", 5)
        a = svc.submit(circuit, _batch(5, 2, 0), priority=0)
        b = svc.submit(circuit, _batch(5, 2, 1), priority=7, deadline=99.0)
        assert a.group_key == b.group_key

    def test_group_key_for_does_not_mutate_the_template(self):
        """Regression: fingerprinting a budget must not write through the
        shared template simulator — the gateway calls ``group_key_for``
        from concurrent executor threads without holding the shard lock,
        so a temporary mutation could leak another job's fidelity class
        into an unrelated key."""
        svc = BatchSimulationService()
        circuit = make_circuit("vqe_finetune", 5)
        assert svc._template.fidelity == 1.0
        svc.group_key_for(circuit, fidelity=0.9)
        assert svc._template.fidelity == 1.0

    def test_group_key_for_is_stable_under_concurrent_mixed_budgets(self):
        """Concurrent exact/approximate fingerprints never cross-contaminate:
        every thread sees exactly the key serial computation produces."""
        import threading

        svc = BatchSimulationService()
        circuit = make_circuit("vqe_finetune", 5)
        budgets = [1.0, 0.99, 0.9]
        expected = {b: svc.group_key_for(circuit, fidelity=b) for b in budgets}
        mismatches = []

        def fingerprint(budget):
            for _ in range(100):
                key = svc.group_key_for(circuit, fidelity=budget)
                if key != expected[budget]:
                    mismatches.append(budget)
                    return

        threads = [
            threading.Thread(target=fingerprint, args=(b,))
            for b in budgets * 4
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert mismatches == []


# ---------------------------------------------------------------------------
# plan-archive persistence
# ---------------------------------------------------------------------------

def test_disk_cached_plan_preserves_the_ledger(tmp_path):
    circuit = make_circuit("vqe_finetune", 5)
    spec = BatchSpec(num_batches=1, batch_size=3, seed=0)
    warm = BQSimSimulator(fidelity=0.99, cache_dir=str(tmp_path))
    first = warm.run(circuit, spec, execute=True)
    assert first.stats["plan_source"] in ("built", "memory")

    cold = BQSimSimulator(fidelity=0.99, cache_dir=str(tmp_path))
    second = cold.run(circuit, spec, execute=True)
    assert second.stats["plan_source"] == "disk"
    assert second.stats["approx"] == first.stats["approx"]
    assert np.array_equal(second.outputs[0], first.outputs[0])


def test_exact_plan_archive_has_no_approx_payload(tmp_path):
    from repro.ell.persist import load_compiled_plan

    circuit = make_circuit("ghz", 4)
    spec = BatchSpec(num_batches=1, batch_size=2, seed=0)
    sim = BQSimSimulator(cache_dir=str(tmp_path))
    sim.run(circuit, spec, execute=True)
    archives = list(tmp_path.glob("*.npz"))
    assert archives
    compiled = load_compiled_plan(archives[0])
    assert compiled.approx is None
