"""Pipeline metrics: counters, gauges, and histograms.

A :class:`Metrics` registry accumulates named measurements from the hot
paths of every pipeline layer:

* **counters** (monotonic) — fusion accept/reject decisions, conversion
  routes, spMM backend choices, plan-cache hits/misses, task submissions;
* **gauges** (last value wins) — sizes and configuration of the most
  recent run;
* **histograms** (count/sum/min/max) — per-gate distributions such as DD
  edges, ELL width, and padding ratio.

The registry is thread-safe and cheap (one dict update under a lock per
event), so instrumentation stays on permanently; per-run attribution uses
:meth:`Metrics.mark` / :meth:`Metrics.delta` to diff the monotonic state
around a run, which is how ``SimulationResult.stats["metrics"]`` scopes
the process-global registry to a single simulation.
"""

from __future__ import annotations

import threading


class Metrics:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # histogram name -> [count, sum, min, max]
        self._hists: dict[str, list[float]] = {}

    # -- instruments --------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = [1, value, value, value]
            else:
                hist[0] += 1
                hist[1] += value
                hist[2] = min(hist[2], value)
                hist[3] = max(hist[3], value)

    # -- retrieval ----------------------------------------------------------

    @staticmethod
    def _hist_dict(hist: list[float]) -> dict:
        count, total, lo, hi = hist
        return {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0.0,
        }

    def snapshot(self) -> dict:
        """Full copy of the registry state (JSON-safe)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: self._hist_dict(hist)
                    for name, hist in self._hists.items()
                },
            }

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def mark(self) -> dict:
        """Opaque marker for :meth:`delta` (a snapshot of monotonic state)."""
        return self.snapshot()

    def delta(self, mark: dict) -> dict:
        """Changes since ``mark``: counter diffs (non-zero only), current
        gauges, and histogram count/sum/mean diffs (min/max are whole-run)."""
        now = self.snapshot()
        before_c = mark.get("counters", {})
        counters = {
            name: value - before_c.get(name, 0)
            for name, value in now["counters"].items()
            if value != before_c.get(name, 0)
        }
        before_h = mark.get("histograms", {})
        histograms = {}
        for name, hist in now["histograms"].items():
            prior = before_h.get(name, {"count": 0, "sum": 0.0})
            dcount = hist["count"] - prior["count"]
            if dcount <= 0:
                continue
            dsum = hist["sum"] - prior["sum"]
            histograms[name] = {
                "count": dcount,
                "sum": dsum,
                "mean": dsum / dcount,
                "min": hist["min"],
                "max": hist["max"],
            }
        return {
            "counters": counters,
            "gauges": now["gauges"],
            "histograms": histograms,
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


# ---------------------------------------------------------------------------
# process-global default registry
# ---------------------------------------------------------------------------

_global_metrics = Metrics()


def get_metrics() -> Metrics:
    """The process-global metrics registry (always on; events are cheap)."""
    return _global_metrics


def set_metrics(metrics: Metrics) -> Metrics:
    """Swap the global registry (returns the previous one)."""
    global _global_metrics
    previous = _global_metrics
    _global_metrics = metrics
    return previous
