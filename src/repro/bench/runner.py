"""Experiment runner: builds simulators, runs workloads, collects rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..dd.manager import DDManager
from ..fusion.array_fusion import aer_fusion
from ..fusion.bqcs import bqcs_fusion
from ..sim import (
    BQSimSimulator,
    BatchSimulator,
    BatchSpec,
    CuQuantumSimulator,
    FlatDDSimulator,
    QiskitAerSimulator,
    SimulationResult,
)
from .workloads import Workload

SIMULATOR_ORDER = ("cuquantum", "qiskit-aer", "flatdd", "bqsim")


def make_simulators(engine=None, **bqsim_kwargs) -> dict[str, BatchSimulator]:
    """The paper's four contestants, in Table 2 column order."""
    return {
        "cuquantum": CuQuantumSimulator(engine=engine),
        "qiskit-aer": QiskitAerSimulator(engine=engine),
        "flatdd": FlatDDSimulator(engine=engine),
        "bqsim": BQSimSimulator(engine=engine, **bqsim_kwargs),
    }


def make_cuquantum_variants() -> dict[str, BatchSimulator]:
    """cuQuantum with injected fusion plans (Table 4)."""
    return {
        "cuquantum+Q": CuQuantumSimulator(
            plan_provider=aer_fusion, variant_name="cuquantum+Q"
        ),
        "cuquantum+B": CuQuantumSimulator(
            plan_provider=bqcs_fusion, variant_name="cuquantum+B"
        ),
    }


@dataclass
class RunRecord:
    """One (workload, simulator) outcome."""

    workload: Workload
    result: SimulationResult

    @property
    def modeled_ms(self) -> float:
        return self.result.modeled_time * 1e3


def run_suite(
    workloads: Sequence[Workload],
    spec: BatchSpec,
    simulators: dict[str, BatchSimulator],
    execute: bool = False,
    progress: Callable[[str], None] | None = None,
) -> dict[tuple[str, int], dict[str, RunRecord]]:
    """Run every simulator on every workload; returns records keyed by
    workload key then simulator name."""
    records: dict[tuple[str, int], dict[str, RunRecord]] = {}
    for workload in workloads:
        circuit = workload.build()
        per_sim: dict[str, RunRecord] = {}
        for name, simulator in simulators.items():
            if progress:
                progress(f"{workload.label} / {name}")
            result = simulator.run(circuit, spec, execute=execute)
            per_sim[name] = RunRecord(workload=workload, result=result)
        records[workload.key] = per_sim
    return records
