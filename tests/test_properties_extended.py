"""Property-based tests for the application layers (transpile, testing,
noise, vqa, persistence)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit
from repro.circuit.gates import Gate
from repro.noise import NoiseChannel, depolarizing
from repro.testing import PRESERVING
from repro.transpile import circuits_equivalent, decompose_to_basis, optimize
from repro.vqa import PauliSum

finite = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


@st.composite
def small_circuits(draw, num_qubits=3, max_gates=10):
    kinds = st.sampled_from(["h", "x", "z", "s", "t", "rz", "ry", "cx", "cz", "rzz", "swap"])
    gates = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        kind = draw(kinds)
        qubits = draw(st.permutations(range(num_qubits)))
        if kind in ("rz", "ry"):
            gates.append(Gate.make(kind, [qubits[0]], [draw(finite)]))
        elif kind == "rzz":
            gates.append(Gate.make(kind, [qubits[0], qubits[1]], [draw(finite)]))
        elif kind in ("cx", "cz", "swap"):
            gates.append(Gate.make(kind, [qubits[0], qubits[1]]))
        else:
            gates.append(Gate.make(kind, [qubits[0]]))
    return Circuit(num_qubits, gates)


@settings(max_examples=12, deadline=None)
@given(small_circuits())
def test_optimize_preserves_semantics(circuit):
    assert circuits_equivalent(circuit, optimize(circuit), num_inputs=4)


@settings(max_examples=12, deadline=None)
@given(small_circuits())
def test_decompose_then_optimize_preserves_semantics(circuit):
    basis = decompose_to_basis(circuit)
    assert circuits_equivalent(circuit, optimize(basis), num_inputs=4)


@settings(max_examples=10, deadline=None)
@given(small_circuits(), st.integers(min_value=0, max_value=2**31 - 1))
def test_preserving_mutations_hold_on_random_circuits(circuit, seed):
    rng = np.random.default_rng(seed)
    for mutate in PRESERVING.values():
        assert circuits_equivalent(circuit, mutate(circuit, rng), num_inputs=4)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=4,
        max_size=4,
    ).filter(lambda probs: sum(probs) > 1e-6)
)
def test_random_pauli_channels_are_cptp_and_decompose(probs):
    total = sum(probs)
    normalized = [p / total for p in probs]
    paulis = [np.eye(2), np.array([[0, 1], [1, 0]]),
              np.array([[0, -1j], [1j, 0]]), np.diag([1, -1])]
    kraus = tuple(
        np.sqrt(p) * m for p, m in zip(normalized, paulis) if p > 0
    )
    channel = NoiseChannel("random-pauli", kraus)
    decomposed = channel.pauli_probabilities()
    assert decomposed is not None
    for label, want in zip("IXYZ", normalized):
        assert decomposed[label] == pytest.approx(want, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(finite, min_size=2, max_size=4),
    st.lists(st.sampled_from(["III", "ZZI", "XIX", "YYZ", "IZI"]),
             min_size=2, max_size=4, unique=True),
)
def test_pauli_sum_expectation_is_linear(coeffs, strings):
    k = min(len(coeffs), len(strings))
    coeffs, strings = coeffs[:k], strings[:k]
    rng = np.random.default_rng(0)
    state = rng.standard_normal(8) + 1j * rng.standard_normal(8)
    state = (state / np.linalg.norm(state)).reshape(-1, 1)
    whole = PauliSum(3, tuple(strings), tuple(coeffs)).expectation(state)[0]
    parts = sum(
        PauliSum(3, (s,), (c,)).expectation(state)[0]
        for s, c in zip(strings, coeffs)
    )
    assert whole == pytest.approx(parts, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(small_circuits(num_qubits=3, max_gates=6), st.integers(0, 10**6))
def test_bundle_roundtrip_random_circuits(circuit, seed):
    import tempfile
    from pathlib import Path

    from repro.dd import DDManager
    from repro.ell import bundle_from_plan, ell_from_dd_cpu, load_bundle, save_bundle
    from repro.fusion import bqcs_fusion

    mgr = DDManager(3)
    plan = bqcs_fusion(mgr, circuit)
    ells = [ell_from_dd_cpu(fg.dd, 3) for fg in plan.gates]
    bundle = bundle_from_plan("prop", 3, ells)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bundle.npz"
        save_bundle(bundle, path)
        loaded = load_bundle(path)
    rng = np.random.default_rng(seed)
    states = rng.standard_normal((8, 2)) + 1j * rng.standard_normal((8, 2))
    assert np.allclose(loaded.apply(states.copy()), bundle.apply(states.copy()))
