"""BQCS-aware gate fusion (Section 3.1.2, Figure 4).

Three steps over the circuit's DD gate list:

1. fuse *runs* of consecutive cost-1 (diagonal/permutation) gates — the
   fused gate stays cost 1;
2. fuse *pairs* of consecutive cost-2 gates — the fused gate costs at most
   4 = 2 + 2 but halves the memory loads/stores;
3. FlatDD-style greedy fusion: walk left to right with an accumulator and
   fuse the next gate whenever the fused BQCS cost does not exceed the sum
   of the parts.

Fused gates preserve circuit order: fusing ``a`` then ``b`` (b applied
after a) multiplies ``dd(b) @ dd(a)``.
"""

from __future__ import annotations

from ..circuit.circuit import Circuit
from ..dd.build import gate_matrix_dd
from ..dd.manager import DDManager
from ..errors import FusionError
from ..obs import get_metrics, get_tracer
from .cost import bqcs_cost, total_nonzeros
from .plan import FusedGate, FusionPlan


def _lift(mgr: DDManager, circuit: Circuit) -> list[FusedGate]:
    """Wrap every circuit gate as a single-gate :class:`FusedGate`."""
    items = []
    for index, gate in enumerate(circuit.gates):
        dd = gate_matrix_dd(mgr, gate)
        items.append(
            FusedGate(
                dd=dd,
                cost=bqcs_cost(mgr, dd),
                gate_indices=(index,),
                nnz=total_nonzeros(mgr, dd),
            )
        )
    return items


def _fuse(mgr: DDManager, first: FusedGate, second: FusedGate) -> FusedGate:
    """Fuse two adjacent fused gates (``second`` applied after ``first``)."""
    dd = mgr.mm_multiply(second.dd, first.dd)
    if dd.weight == 0:
        raise FusionError("fused gate collapsed to the zero matrix")
    return FusedGate(
        dd=dd,
        cost=bqcs_cost(mgr, dd),
        gate_indices=first.gate_indices + second.gate_indices,
        nnz=total_nonzeros(mgr, dd),
    )


def _fuse_cost_one_runs(mgr: DDManager, items: list[FusedGate]) -> list[FusedGate]:
    """Step 1: collapse maximal runs of cost-1 gates into one cost-1 gate."""
    out: list[FusedGate] = []
    for item in items:
        if out and out[-1].cost == 1 and item.cost == 1:
            get_metrics().inc("fusion.cost1_fused")
            out[-1] = _fuse(mgr, out[-1], item)
        else:
            out.append(item)
    return out


def _fuse_cost_two_pairs(mgr: DDManager, items: list[FusedGate]) -> list[FusedGate]:
    """Step 2: fuse consecutive pairs of cost-2 gates."""
    out: list[FusedGate] = []
    i = 0
    while i < len(items):
        if (
            i + 1 < len(items)
            and items[i].cost == 2
            and items[i + 1].cost == 2
        ):
            get_metrics().inc("fusion.cost2_pairs")
            out.append(_fuse(mgr, items[i], items[i + 1]))
            i += 2
        else:
            out.append(items[i])
            i += 1
    return out


def _greedy(
    mgr: DDManager, items: list[FusedGate], max_cost: int | None
) -> list[FusedGate]:
    """Step 3: left-to-right greedy fusion on BQCS cost.

    Fuses the accumulator with the next gate when the fused cost does not
    exceed the sum of the parts (the paper's example fuses at equality,
    trading no extra #MAC for fewer kernel launches and memory sweeps).
    ``max_cost`` optionally caps the fused cost to bound DD growth.
    """
    if not items:
        return items
    metrics = get_metrics()
    out: list[FusedGate] = [items[0]]
    for item in items[1:]:
        candidate = _fuse(mgr, out[-1], item)
        if candidate.cost <= out[-1].cost + item.cost and (
            max_cost is None or candidate.cost <= max_cost
        ):
            metrics.inc("fusion.greedy_accept")
            out[-1] = candidate
        else:
            metrics.inc("fusion.greedy_reject")
            out.append(item)
    return out


def bqcs_fusion(
    mgr: DDManager,
    circuit: Circuit,
    max_cost: int | None = None,
) -> FusionPlan:
    """Run the full three-step BQCS-aware gate fusion on a circuit."""
    if circuit.num_qubits != mgr.num_qubits:
        raise FusionError(
            f"manager is for {mgr.num_qubits} qubits, circuit has "
            f"{circuit.num_qubits}"
        )
    with get_tracer().span(
        "fusion.bqcs", gates=len(circuit.gates), max_cost=max_cost
    ) as span:
        items = _lift(mgr, circuit)
        items = _fuse_cost_one_runs(mgr, items)
        if max_cost is None or max_cost >= 4:
            # pairing two cost-2 gates yields cost <= 4; skip under a tighter cap
            items = _fuse_cost_two_pairs(mgr, items)
        items = _greedy(mgr, items, max_cost)
        span.set(fused_gates=len(items), total_cost=sum(g.cost for g in items))
    _record_plan_shape("bqcs", items)
    return FusionPlan(
        num_qubits=circuit.num_qubits,
        gates=tuple(items),
        algorithm="bqcs",
        source_gate_count=len(circuit.gates),
    )


def _record_plan_shape(algorithm: str, items: list[FusedGate]) -> None:
    """Histogram the per-fused-gate shape signals (cost == max NZR, total
    non-zeros, source-gate span) — the DD-growth-per-gate view that QuIDD
    gate-level analyses track."""
    metrics = get_metrics()
    metrics.inc(f"fusion.plans.{algorithm}")
    for item in items:
        metrics.observe("fusion.gate_cost", item.cost)
        metrics.observe("fusion.gate_nnz", item.nnz)
        metrics.observe("fusion.source_gates", item.num_source_gates)


def no_fusion_plan(mgr: DDManager, circuit: Circuit) -> FusionPlan:
    """One fused gate per circuit gate (the ablation baseline)."""
    return FusionPlan(
        num_qubits=circuit.num_qubits,
        gates=tuple(_lift(mgr, circuit)),
        algorithm="none",
        source_gate_count=len(circuit.gates),
    )
