"""Table 2 — overall runtime: BQSim vs cuQuantum, Qiskit Aer, FlatDD.

Runs all four simulators over the workload suite (200 batches x 256 inputs
at medium/paper scale) and prints runtimes plus BQSim's speed-ups, side by
side with the paper's published values.
"""

from __future__ import annotations

from ..runner import SIMULATOR_ORDER, make_simulators
from ..tables import fmt_ms, fmt_speedup, geomean, print_table
from ..workloads import PAPER_TABLE2_MS, suite

#: (family, n, simulator) runs skipped at paper scale.  DD-based fusion on
#: QNN n=19/21 takes hours of *host* time in pure Python (the paper's C++
#: fuses QNN n=21 in ~8.5 s, and its own FlatDD runs on these circuits
#: exceeded 24 h); the dense/array planners are unaffected.
PAPER_SKIP = {
    ("qnn", 19, "flatdd"), ("qnn", 21, "flatdd"),
    ("qnn", 19, "bqsim"), ("qnn", 21, "bqsim"),
}


def run(scale: str = "small", execute: bool | None = None) -> list[dict]:
    workloads, spec, default_execute = suite(scale)
    execute = default_execute if execute is None else execute
    simulators = make_simulators()
    rows = []
    for workload in workloads:
        circuit = workload.build()
        row = {
            "family": workload.family,
            "num_qubits": workload.num_qubits,
            "num_gates": len(circuit),
            "paper_ms": PAPER_TABLE2_MS.get(workload.key),
        }
        results = {}
        for name in SIMULATOR_ORDER:
            if scale == "paper" and (workload.family, workload.num_qubits, name) in PAPER_SKIP:
                row[f"{name}_s"] = None
                continue
            results[name] = simulators[name].run(circuit, spec, execute=execute)
            row[f"{name}_s"] = results[name].modeled_time
        bqsim = row["bqsim_s"]
        for name in SIMULATOR_ORDER:
            if name == "bqsim":
                continue
            seconds = row[f"{name}_s"]
            row[f"speedup_{name}"] = (
                seconds / bqsim
                if seconds is not None and bqsim is not None and bqsim > 0
                else float("nan")
            )
        rows.append(row)
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    table = []
    for r in rows:
        paper = r["paper_ms"]
        paper_speedup = (
            f"{paper[0] / paper[3]:.2f}x" if paper and paper[0] else "-"
        )

        def cell(value):
            return "-" if value is None else fmt_ms(value)

        table.append(
            [
                r["family"],
                r["num_qubits"],
                r["num_gates"],
                cell(r["cuquantum_s"]),
                cell(r["qiskit-aer_s"]),
                cell(r["flatdd_s"]),
                cell(r["bqsim_s"]),
                fmt_speedup(r["speedup_cuquantum"]),
                fmt_speedup(r["speedup_qiskit-aer"]),
                fmt_speedup(r["speedup_flatdd"]),
                paper_speedup,
            ]
        )
    print_table(
        f"Table 2: overall runtime in ms (scale={scale})",
        [
            "circuit", "n", "#gates", "cuQuantum", "Qiskit Aer", "FlatDD",
            "BQSim", "vs cuQ", "vs Aer", "vs FlatDD", "paper vs cuQ",
        ],
        table,
    )
    print(
        "geomean speedups: "
        f"vs cuQuantum {geomean([r['speedup_cuquantum'] for r in rows]):.2f}x, "
        f"vs Qiskit Aer {geomean([r['speedup_qiskit-aer'] for r in rows]):.2f}x, "
        f"vs FlatDD {geomean([r['speedup_flatdd'] for r in rows]):.2f}x "
        "(paper: 3.25x / 159.06x / 331.42x)"
    )  # geomean ignores skipped (NaN) runs, like the paper's >24h entries
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
