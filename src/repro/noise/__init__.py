"""Noise substrate: Kraus channels, density-matrix reference, trajectories."""

from .channels import (
    NoiseChannel,
    NoiseModel,
    amplitude_damping,
    bit_flip,
    depolarizing,
    phase_flip,
)
from .density import (
    density_probabilities,
    purity,
    simulate_density,
    state_fidelity_with_density,
)
from .mitigation import ZNEResult, richardson_extrapolate, zero_noise_extrapolation
from .trajectories import TrajectoryResult, sample_trajectory, simulate_noisy_batch

__all__ = [
    "amplitude_damping",
    "bit_flip",
    "density_probabilities",
    "depolarizing",
    "NoiseChannel",
    "NoiseModel",
    "phase_flip",
    "purity",
    "richardson_extrapolate",
    "sample_trajectory",
    "simulate_density",
    "simulate_noisy_batch",
    "state_fidelity_with_density",
    "TrajectoryResult",
    "zero_noise_extrapolation",
    "ZNEResult",
]
