"""Bounded retries with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` is immutable configuration; a :class:`RetrySession`
is the mutable per-run (per-device) state that enforces both the per-task
attempt limit and the per-run retry budget.  Backoff seconds are *modeled*:
they are added to the failing task's duration on the virtual timeline rather
than slept on the host, so fault-heavy runs stay fast to execute while the
modeled makespan still reflects the retries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .events import get_resilience_log


@dataclass(frozen=True)
class RetryPolicy:
    """Retry configuration for transient faults."""

    #: total attempts per operation (1 = no retries)
    max_attempts: int = 3
    #: modeled seconds before the first retry
    base_backoff: float = 1e-3
    #: backoff multiplier per subsequent retry
    multiplier: float = 2.0
    #: jitter fraction added on top of the exponential term (deterministic,
    #: drawn from the session's seeded stream)
    jitter: float = 0.1
    #: total retries allowed per session (device/run) before giving up
    run_budget: int = 64

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Modeled backoff before retrying after failed attempt ``attempt``."""
        base = self.base_backoff * self.multiplier ** (attempt - 1)
        return base * (1.0 + self.jitter * float(rng.random()))


class RetrySession:
    """Per-run retry state: budget accounting and the jitter stream."""

    def __init__(self, policy: RetryPolicy | None = None, seed: int = 0):
        self.policy = policy or RetryPolicy()
        self._rng = np.random.default_rng([int(seed) & 0xFFFFFFFF, 0x52545259])
        self.retries = 0
        #: cumulative modeled backoff granted so far — callers that price
        #: retries into a timeline (or a pool restart budget report) read
        #: this instead of re-summing their own events
        self.backoff_total = 0.0

    def next_backoff(self, site: str, attempt: int, error=None) -> float | None:
        """Decide whether to retry after failed attempt ``attempt`` (1-based).

        Returns the modeled backoff seconds, or ``None`` when the attempt
        limit or the run budget is exhausted (the caller then surfaces the
        typed error).  Records a ``retry`` / ``retry_exhausted`` event.
        """
        policy = self.policy
        if attempt >= policy.max_attempts or self.retries >= policy.run_budget:
            get_resilience_log().record(
                "retry_exhausted",
                site=site,
                attempts=attempt,
                error=type(error).__name__ if error is not None else "",
            )
            return None
        self.retries += 1
        backoff = policy.backoff(attempt, self._rng)
        self.backoff_total += backoff
        get_resilience_log().record(
            "retry", site=site, attempt=attempt, backoff_s=round(backoff, 9)
        )
        return backoff
