"""ELL-based sparse-matrix multiplication — the BQCS kernel's math.

``out[r, b] = sum_k values[r, k] * states[cols[r, k], b]``: a gather plus a
multiply-accumulate per ELL slot, applied to the whole batch at once.
Padded slots contribute ``0 * states[0, b]`` and are harmless, exactly like
the idle lanes of the real kernel.

The hot path runs through a :class:`GatherPlan`: a compiled form of the ELL
matrix (flattened gather indices, contiguous value array, and — when SciPy
is available — a CSR mirror) built once per fused gate and reused for every
batch.  Three interchangeable backends implement the same math:

* ``"csr"`` — SciPy's compiled CSR spMM; the fastest path (one C pass,
  no Python-level temporaries).  Results agree with the loop to the last
  few ULPs but are not bit-identical (the C code may contract to FMAs).
* ``"numpy"`` — a cache-blocked gather + multiply-accumulate that performs
  the *same* floating-point operations in the same order as the reference
  loop, so its output is bit-identical, while keeping every temporary
  small enough to stay in cache.
* ``"loop"`` — the original per-slot loop (:func:`ell_spmm_loop`), kept as
  the reference kernel and as the baseline the fast paths are benchmarked
  against.

Width-1 matrices (pure permutation/diagonal gates) short-circuit to a
single gather-multiply, and consecutive width-1 plans can be *composed*
into one plan (:meth:`GatherPlan.compose`), collapsing a chain of kernels
into a single pass over the state block.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import SimulationError
from ..kernels import ops as _kernels
from ..kernels.engine import ArrayEngine, get_engine
from ..obs import get_metrics
from ..resilience.faults import get_fault_injector
from .format import ELLMatrix

try:  # SciPy is optional: the numpy backend is the self-contained fallback
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparse = None

#: backends accepted by :func:`ell_spmm` / :meth:`GatherPlan.apply`
BACKENDS = ("auto", "csr", "numpy", "loop")

#: process-wide default backend; ``auto`` picks csr when SciPy is present
DEFAULT_BACKEND = os.environ.get("REPRO_SPMM_BACKEND", "auto")

#: row-block sizing of the numpy backend lives with the kernel itself
#: (see ``repro.kernels.ops.BLOCK_ELEMS``)


def _resolve_backend(backend: str | None) -> str:
    backend = backend or DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown spMM backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        return "csr" if _scipy_sparse is not None else "numpy"
    if backend == "csr" and _scipy_sparse is None:
        raise SimulationError("spMM backend 'csr' requires scipy")
    return backend


def default_backend() -> str:
    """The concrete backend ``auto`` resolves to in this process."""
    return _resolve_backend(None)


class GatherPlan:
    """Compiled gather/accumulate program for one ELL matrix.

    Built once per fused gate (see :func:`gather_plan`) and applied to every
    batch; holds contiguous copies of the value/column arrays, the flattened
    gather index, and a lazily built CSR mirror for the SciPy backend.
    """

    __slots__ = (
        "num_qubits",
        "num_rows",
        "width",
        "values",
        "cols",
        "flat_cols",
        "_csr",
        "_engine_arrays",
    )

    def __init__(self, num_qubits: int, values: np.ndarray, cols: np.ndarray):
        values = np.ascontiguousarray(values, dtype=np.complex128)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        if values.shape != cols.shape or values.ndim != 2:
            raise SimulationError("gather plan value/column shapes differ")
        self.num_qubits = int(num_qubits)
        self.num_rows = int(values.shape[0])
        self.width = int(values.shape[1])
        self.values = values
        self.cols = cols
        self.flat_cols = np.ascontiguousarray(cols.ravel())
        self._csr = None
        # engine name -> (values, cols, flat_cols) in that engine's space;
        # host engines alias the originals, device engines hold one upload
        self._engine_arrays: dict[str, tuple] = {}

    @classmethod
    def from_ell(cls, ell: ELLMatrix) -> "GatherPlan":
        return cls(ell.num_qubits, ell.values, ell.cols)

    def to_ell(self) -> ELLMatrix:
        return ELLMatrix(self.num_qubits, self.values, self.cols)

    @property
    def is_width_one(self) -> bool:
        """True for pure permutation/diagonal gates: a single gather."""
        return self.width == 1

    @property
    def macs_per_input(self) -> int:
        return self.num_rows * self.width

    # -- composition ---------------------------------------------------------

    def compose(self, later: "GatherPlan") -> "GatherPlan":
        """Fuse two width-1 plans into one (``self`` applied first).

        ``(later @ self) s`` for width-1 matrices is again width 1:
        ``out[r] = later.v[r] * self.v[later.c[r]] * s[self.c[later.c[r]]]``.
        """
        if not (self.is_width_one and later.is_width_one):
            raise SimulationError("only width-1 gather plans can be composed")
        if self.num_rows != later.num_rows:
            raise SimulationError("cannot compose plans of different sizes")
        mid = later.flat_cols
        cols = self.flat_cols[mid].reshape(-1, 1)
        values = (later.values[:, 0] * self.values[mid, 0]).reshape(-1, 1)
        return GatherPlan(self.num_qubits, values, cols)

    # -- application ---------------------------------------------------------

    def engine_arrays(self, engine: ArrayEngine) -> tuple:
        """``(values, cols, flat_cols)`` in ``engine``'s array space.

        Host engines alias the plan's own arrays (no copy); device
        engines upload once and reuse the cached copies for every batch.
        """
        arrays = self._engine_arrays.get(engine.name)
        if arrays is None:
            arrays = (
                engine.asarray(self.values),
                engine.asarray(self.cols),
                engine.asarray(self.flat_cols),
            )
            self._engine_arrays[engine.name] = arrays
        return arrays

    def apply(
        self,
        states,
        out=None,
        backend: str | None = None,
        engine: "str | ArrayEngine | None" = None,
    ) -> np.ndarray:
        """Multiply the planned matrix by a ``(2^n, batch)`` state block.

        ``backend`` picks the algorithm (csr/numpy/loop), ``engine`` the
        array space it runs in; the csr backend needs host memory and
        silently falls back to the blocked kernel on real-device engines.
        """
        if states.shape[0] != self.num_rows:
            raise SimulationError(
                f"state dim {states.shape[0]} != ELL rows {self.num_rows}"
            )
        if out is not None:
            if out is states:
                raise SimulationError("ell_spmm cannot run in place")
            if out.shape != states.shape:
                raise SimulationError("output buffer shape mismatch")
        eng = get_engine(engine)
        values, cols, flat_cols = self.engine_arrays(eng)
        injector = get_fault_injector()
        if self.is_width_one:
            get_metrics().inc("spmm.backend.width1")
            result = _kernels.ell_gather_width1(eng, values, flat_cols, states)
        else:
            mode = _resolve_backend(backend)
            if mode == "csr" and not eng.host_memory:
                mode = "numpy"  # scipy CSR cannot consume device arrays
            if injector is not None and injector.check(f"spmm.{mode}"):
                raise SimulationError(f"injected spMM backend fault ({mode})")
            get_metrics().inc(f"spmm.backend.{mode}")
            if mode == "csr":
                result = self._csr_matrix() @ states
            elif mode == "numpy":
                result = _kernels.ell_gather_spmm(eng, values, cols, states)
            else:
                result = _kernels.ell_gather_slots(
                    eng, values, cols, states, eng.xp.zeros_like(states)
                )
        if injector is not None and injector.check("bitflip"):
            # every branch above produced a fresh array, so the corruption
            # never reaches the caller's inputs; the device-level output
            # check turns the NaN into a healed retry
            eng.poison(result, injector.draw_index("bitflip", result.size))
        if out is None:
            return result
        return _kernels.copy_into(eng, out, result)

    def _csr_matrix(self):
        """CSR mirror, keeping padded slots as explicit zeros so the
        accumulation order matches the ELL layout."""
        if self._csr is None:
            indptr = np.arange(self.num_rows + 1, dtype=np.int64) * self.width
            self._csr = _scipy_sparse.csr_matrix(
                (self.values.ravel(), self.flat_cols, indptr),
                shape=(self.num_rows, self.num_rows),
            )
        return self._csr


def gather_plan(ell: ELLMatrix) -> GatherPlan:
    """Return the (memoized) compiled gather plan of an ELL matrix."""
    plan = getattr(ell, "_gather_plan", None)
    if plan is None:
        plan = GatherPlan.from_ell(ell)
        # ELLMatrix is a frozen dataclass; attach the plan out-of-band so
        # repeated applications of the same matrix reuse one plan
        object.__setattr__(ell, "_gather_plan", plan)
    return plan


def build_apply_plans(
    matrices, compose_width_one: bool = True
) -> list[GatherPlan]:
    """Compile a gate sequence into gather plans, fusing width-1 runs.

    Consecutive width-1 matrices (pure permutation/diagonal kernels) are
    composed into a single plan, so a chain of such gates costs one gather
    instead of one pass per gate.  Matrices are applied left to right.
    """
    plans: list[GatherPlan] = []
    for item in matrices:
        plan = gather_plan(item) if isinstance(item, ELLMatrix) else item
        if (
            compose_width_one
            and plans
            and plans[-1].is_width_one
            and plan.is_width_one
        ):
            get_metrics().inc("spmm.width1_composed")
            plans[-1] = plans[-1].compose(plan)
        else:
            plans.append(plan)
    return plans


def ell_spmm(
    ell: ELLMatrix | GatherPlan,
    states: np.ndarray,
    out: np.ndarray | None = None,
    backend: str | None = None,
    engine: "str | ArrayEngine | None" = None,
) -> np.ndarray:
    """Multiply an ELL gate matrix by a ``(2^n, batch)`` state block.

    Accepts either an :class:`ELLMatrix` (its compiled plan is built and
    memoized on first use) or a prebuilt :class:`GatherPlan`.
    """
    plan = gather_plan(ell) if isinstance(ell, ELLMatrix) else ell
    return plan.apply(states, out=out, backend=backend, engine=engine)


def ell_spmm_loop(
    ell: ELLMatrix,
    states: np.ndarray,
    out: np.ndarray | None = None,
    engine: "str | ArrayEngine | None" = None,
) -> np.ndarray:
    """Reference per-slot loop kernel (the original implementation).

    One fancy-indexing gather, multiply, and accumulate per ELL slot; kept
    as the ground truth the compiled plans are validated (bit-identical,
    numpy backend) and benchmarked (>= 2x, csr backend) against.
    """
    if states.shape[0] != ell.num_rows:
        raise SimulationError(
            f"state dim {states.shape[0]} != ELL rows {ell.num_rows}"
        )
    eng = get_engine(engine)
    if out is None:
        out = eng.xp.zeros_like(states)
    elif out.shape != states.shape:
        raise SimulationError("output buffer shape mismatch")
    else:
        if out is states:
            raise SimulationError("ell_spmm cannot run in place")
    plan = gather_plan(ell) if isinstance(ell, ELLMatrix) else ell
    values, cols, _ = plan.engine_arrays(eng)
    return _kernels.ell_gather_slots(eng, values, cols, states, out)


def spmm_macs(ell: ELLMatrix, batch_size: int) -> int:
    """#MAC for one kernel call: rows x width x batch."""
    return ell.macs_per_input * batch_size


def spmm_bytes(ell: ELLMatrix, batch_size: int, complex_bytes: int = 16) -> int:
    """Device memory traffic of one kernel call (reads + writes).

    Gate data is read once; the state block is gathered ``width`` times and
    written once.
    """
    state_block = ell.num_rows * batch_size * complex_bytes
    gathers = ell.width * state_block
    return ell.nbytes + gathers + state_block
