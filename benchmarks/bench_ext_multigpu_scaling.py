"""Extension bench — multi-GPU batch-partitioning scaling."""

from conftest import run_once
from repro.bench.experiments import scaling_multigpu


def test_multigpu_scaling(benchmark, scale):
    rows = run_once(benchmark, scaling_multigpu.run, scale)
    by_circuit = {}
    for r in rows:
        by_circuit.setdefault((r["family"], r["num_qubits"]), []).append(r)
    for series in by_circuit.values():
        series.sort(key=lambda r: r["devices"])
        speedups = [r["speedup"] for r in series]
        assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 1.5
