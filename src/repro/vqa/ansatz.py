"""Parameterized ansatz circuits for variational algorithms.

An :class:`Ansatz` is a template that binds a flat parameter vector into a
concrete :class:`~repro.circuit.circuit.Circuit`; the VQE driver evaluates
*many parameter candidates per iteration* by batching them — the
variational-workload pattern of the paper's related work ([29]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuit.circuit import Circuit
from ..errors import SimulationError


@dataclass(frozen=True)
class Ansatz:
    """Hardware-efficient RY/RZ + CX-chain ansatz."""

    num_qubits: int
    reps: int = 2
    use_rz: bool = True

    @property
    def num_parameters(self) -> int:
        per_layer = self.num_qubits * (2 if self.use_rz else 1)
        return per_layer * (self.reps + 1)

    def bind(self, parameters: Sequence[float]) -> Circuit:
        """Instantiate the circuit for one parameter vector."""
        parameters = np.asarray(parameters, dtype=float).reshape(-1)
        if parameters.shape[0] != self.num_parameters:
            raise SimulationError(
                f"ansatz takes {self.num_parameters} parameters, got "
                f"{parameters.shape[0]}"
            )
        circuit = Circuit(self.num_qubits, name=f"ansatz_n{self.num_qubits}")
        cursor = 0

        def rotation_layer() -> None:
            nonlocal cursor
            for q in range(self.num_qubits):
                circuit.ry(float(parameters[cursor]), q)
                cursor += 1
            if self.use_rz:
                for q in range(self.num_qubits):
                    circuit.rz(float(parameters[cursor]), q)
                    cursor += 1

        for _ in range(self.reps):
            rotation_layer()
            for q in range(self.num_qubits - 1):
                circuit.cx(q, q + 1)
        rotation_layer()
        return circuit

    def random_parameters(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = np.random.default_rng(rng)
        return rng.uniform(-np.pi, np.pi, self.num_parameters)
