"""Batch-boundary checkpoints: crash a run, keep the completed batches.

A checkpoint is one atomic ``.npz`` holding the completed output blocks,
the plan fingerprint they were produced under, and the batch spec.  BQSim
writes one after every ``every`` completed batches; ``run(resume=path)``
validates the fingerprint/spec and replays only the unfinished batches.
All malformations surface as typed :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import CheckpointError
from .events import get_resilience_log

_CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """The recoverable state of one interrupted batch run."""

    plan_key: str
    circuit_name: str
    num_qubits: int
    num_batches: int
    batch_size: int
    seed: int
    outputs: tuple[np.ndarray, ...]

    @property
    def completed(self) -> int:
        return len(self.outputs)


def save_checkpoint(
    path: str | Path,
    *,
    plan_key: str,
    circuit_name: str,
    num_qubits: int,
    num_batches: int,
    batch_size: int,
    seed: int,
    outputs: list[np.ndarray],
) -> Path:
    """Write a checkpoint atomically (tmp + rename)."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_CHECKPOINT_VERSION),
        "plan_key": np.array(plan_key),
        "circuit_name": np.array(circuit_name),
        "num_qubits": np.array(num_qubits),
        "num_batches": np.array(num_batches),
        "batch_size": np.array(batch_size),
        "seed": np.array(seed),
        "completed": np.array(len(outputs)),
    }
    for i, block in enumerate(outputs):
        payload[f"out_{i}"] = block
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez_compressed(tmp, **payload)
    tmp.replace(path)
    return path


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load a checkpoint; every failure mode is a :class:`CheckpointError`."""
    path = Path(path)
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    with data:
        def read(key: str):
            try:
                return data[key]
            except (KeyError, ValueError, OSError, zipfile.BadZipFile, zlib.error):
                raise CheckpointError(
                    f"checkpoint {path} is missing or truncates key {key!r}"
                ) from None

        version = int(read("format_version"))
        if version != _CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format version {version} "
                f"(expected {_CHECKPOINT_VERSION})"
            )
        completed = int(read("completed"))
        outputs = tuple(read(f"out_{i}") for i in range(completed))
        return Checkpoint(
            plan_key=str(read("plan_key")),
            circuit_name=str(read("circuit_name")),
            num_qubits=int(read("num_qubits")),
            num_batches=int(read("num_batches")),
            batch_size=int(read("batch_size")),
            seed=int(read("seed")),
            outputs=outputs,
        )


def find_checkpoints(
    directory: str | Path, num_batches: int, batch_size: int, seed: int
) -> list[Path]:
    """Checkpoint archives in ``directory`` matching one batch spec.

    The serving layer uses this on *redelivery*: a mega-batch whose
    worker crashed mid-run may have left a batch-boundary checkpoint in
    the shared checkpoint directory, and the respawned worker can resume
    it instead of recomputing finished batches.  The plan key is not
    known to the parent, so candidates are matched on the spec portion of
    the file name and validated (plan fingerprint included) by
    ``run(resume=...)`` itself — a mismatch is a typed
    :class:`~repro.errors.CheckpointError`, not a wrong answer.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    pattern = f"*-{num_batches}x{batch_size}-s{seed}.ckpt.npz"
    return sorted(directory.glob(pattern))


class CheckpointManager:
    """Owns the checkpoint file of one (plan, batch-spec) combination."""

    def __init__(self, directory: str | Path, every: int = 1):
        if every < 1:
            raise CheckpointError("checkpoint interval must be >= 1")
        self.directory = Path(directory)
        self.every = every

    def path_for(
        self, plan_key: str, num_batches: int, batch_size: int, seed: int
    ) -> Path:
        name = f"{plan_key[:24]}-{num_batches}x{batch_size}-s{seed}.ckpt.npz"
        return self.directory / name

    def maybe_save(
        self,
        batch_index: int,
        *,
        plan_key: str,
        circuit_name: str,
        num_qubits: int,
        num_batches: int,
        batch_size: int,
        seed: int,
        outputs: list[np.ndarray],
    ) -> Path | None:
        """Persist after batch ``batch_index`` when the interval (or the end
        of the run) says so; records a ``checkpoint`` event."""
        done = batch_index + 1
        if done % self.every and done != num_batches:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(plan_key, num_batches, batch_size, seed)
        save_checkpoint(
            path,
            plan_key=plan_key,
            circuit_name=circuit_name,
            num_qubits=num_qubits,
            num_batches=num_batches,
            batch_size=batch_size,
            seed=seed,
            outputs=outputs,
        )
        get_resilience_log().record(
            "checkpoint",
            site="checkpoint",
            batch=batch_index,
            completed=len(outputs),
            path=str(path),
        )
        return path
