"""The docs are part of the test surface.

Three gates keep ``docs/`` honest (the CI ``docs-check`` job runs this
module on every push):

* every fenced ``python`` block in the quickstart executes, in page
  order, in one shared namespace — the page is a runnable script;
* every ``pycon``/doctest example in the docs tree passes ``doctest``;
* every relative markdown link in ``docs/`` and the README resolves to
  a real file.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
QUICKSTART = DOCS_DIR / "quickstart.md"

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def fenced_blocks(path, language):
    """Yield ``(start_line, source)`` for every ``language`` fence in ``path``."""
    blocks, current, start = [], None, 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if match and current is None and match.group(1) == language:
            current, start = [], lineno + 1
        elif match and current is not None:
            blocks.append((start, "\n".join(current)))
            current = None
        elif current is not None:
            current.append(line)
    return blocks


def doc_pages():
    return sorted(DOCS_DIR.glob("*.md"))


def test_docs_exist():
    names = {page.name for page in doc_pages()}
    assert {
        "index.md",
        "quickstart.md",
        "operations.md",
        "architecture.md",
        "kernels.md",
        "approximation.md",
    } <= names


def test_quickstart_python_blocks_execute_in_order():
    """The quickstart is a runnable script: blocks share one namespace."""
    blocks = fenced_blocks(QUICKSTART, "python")
    assert len(blocks) >= 5, "quickstart lost its executable examples"
    namespace = {}
    for start, source in blocks:
        code = compile(source, f"{QUICKSTART.name}:{start}", "exec")
        exec(code, namespace)  # assertions inside the blocks are the test


@pytest.mark.parametrize(
    "page", [p for p in doc_pages() if p.name != "quickstart.md"], ids=lambda p: p.name
)
def test_other_docs_python_blocks_execute(page):
    """Non-quickstart pages get a fresh namespace per page."""
    namespace = {}
    for start, source in fenced_blocks(page, "python"):
        code = compile(source, f"{page.name}:{start}", "exec")
        exec(code, namespace)


@pytest.mark.parametrize("page", doc_pages(), ids=lambda p: p.name)
def test_docs_doctests_pass(page):
    """``pycon`` examples in the docs are real doctests."""
    if ">>>" not in page.read_text():
        pytest.skip("no doctest examples on this page")
    failures, _ = doctest.testfile(
        str(page), module_relative=False, optionflags=doctest.ELLIPSIS
    )
    assert failures == 0


@pytest.mark.parametrize(
    "page",
    [*doc_pages(), REPO_ROOT / "README.md"],
    ids=lambda p: p.name,
)
def test_no_dead_relative_links(page):
    dead = []
    for target in _LINK.findall(page.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (page.parent / target.split("#", 1)[0]).resolve()
        if not path.exists():
            dead.append(f"{page.name}: {target}")
    assert not dead, dead
