"""Graphviz DOT export of decision diagrams (the paper's Figure 1/6 views).

``matrix_to_dot`` / ``vector_to_dot`` serialize a DD for rendering with
``dot -Tsvg``: one record node per DD node (labelled with its qubit level),
solid edges annotated with their weights, and a square terminal.  Zero
edges are omitted, like in the paper's figures.
"""

from __future__ import annotations

from .export import reachable_nodes
from .node import Edge


def _fmt_weight(w: complex) -> str:
    if w == 1:
        return ""
    if w.imag == 0:
        return f"{w.real:.4g}"
    if w.real == 0:
        return f"{w.imag:.4g}i"
    return f"{w.real:.4g}{w.imag:+.4g}i"


def _edges_of(node) -> list[tuple[int, Edge]]:
    return [(slot, child) for slot, child in enumerate(node.children) if child.weight != 0]


def _to_dot(edge: Edge, kind: str) -> str:
    lines = [
        "digraph DD {",
        "  rankdir=TB;",
        '  node [shape=circle, fontsize=10];',
        '  terminal [shape=square, label="1"];',
        '  root [shape=point];',
    ]
    if edge.weight == 0:
        lines.append("}")
        return "\n".join(lines)
    for node in reachable_nodes(edge):
        lines.append(f'  n{node.nid} [label="q{node.level}"];')
    target = "terminal" if edge.node is None else f"n{edge.node.nid}"
    label = _fmt_weight(edge.weight)
    lines.append(f'  root -> {target} [label="{label}"];')
    for node in reachable_nodes(edge):
        for slot, child in _edges_of(node):
            dst = "terminal" if child.node is None else f"n{child.node.nid}"
            head = _fmt_weight(child.weight)
            if kind == "matrix":
                slot_label = f"{slot >> 1}{slot & 1}"  # row bit, col bit
            else:
                slot_label = str(slot)
            text = f"{slot_label}" + (f": {head}" if head else "")
            lines.append(f'  n{node.nid} -> {dst} [label="{text}"];')
    lines.append("}")
    return "\n".join(lines)


def matrix_to_dot(edge: Edge) -> str:
    """DOT source for a matrix DD (edge labels are ``<row bit><col bit>``)."""
    return _to_dot(edge, "matrix")


def vector_to_dot(edge: Edge) -> str:
    """DOT source for a vector DD (edge labels are the row bit)."""
    return _to_dot(edge, "vector")
