"""One module per table/figure of the paper's evaluation section."""

from . import (
    ablation_formats,
    scaling_multigpu,
    fig5,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
    table2,
    table3,
    table4,
)

ALL_EXPERIMENTS = {
    "ablation_formats": ablation_formats,
    "scaling_multigpu": scaling_multigpu,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig5": fig5,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}

__all__ = ["ALL_EXPERIMENTS"] + sorted(ALL_EXPERIMENTS)
