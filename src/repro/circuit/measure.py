"""Measurement and observable utilities over batch simulation outputs.

BQCS produces a ``(2^n, batch)`` block of output amplitudes; these helpers
turn it into the quantities applications actually consume: measurement
probabilities, sampled bitstrings, marginals, and Pauli-string expectations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimulationError


def _check_states(states: np.ndarray) -> int:
    if states.ndim == 1:
        states = states.reshape(-1, 1)
    dim = states.shape[0]
    if dim == 0 or dim & (dim - 1):
        raise SimulationError(f"state dimension {dim} is not a power of two")
    return dim.bit_length() - 1


def probabilities(states: np.ndarray) -> np.ndarray:
    """Measurement probabilities per basis state, columns normalized."""
    _check_states(states)
    p = np.abs(states) ** 2
    totals = p.sum(axis=0, keepdims=True) if p.ndim > 1 else p.sum()
    return p / totals


def marginal_probability(states: np.ndarray, qubit: int, value: int = 1) -> np.ndarray:
    """Per-input probability that ``qubit`` measures ``value``."""
    n = _check_states(states)
    if not 0 <= qubit < n:
        raise SimulationError(f"qubit {qubit} out of range for n={n}")
    p = probabilities(states)
    mask = ((np.arange(p.shape[0]) >> qubit) & 1) == value
    return p[mask].sum(axis=0)


def sample_counts(
    states: np.ndarray,
    shots: int,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, int]]:
    """Sample measurement outcomes; one counts dict per input column.

    Keys are bitstrings with qubit ``n-1`` leftmost (Qiskit convention).
    """
    n = _check_states(states)
    if states.ndim == 1:
        states = states.reshape(-1, 1)
    rng = np.random.default_rng(rng)
    p = probabilities(states)
    results = []
    for column in range(states.shape[1]):
        outcomes = rng.choice(p.shape[0], size=shots, p=p[:, column])
        counts: dict[str, int] = {}
        for outcome in outcomes:
            key = format(outcome, f"0{n}b")
            counts[key] = counts.get(key, 0) + 1
        results.append(counts)
    return results


_PAULIS = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def pauli_expectation(states: np.ndarray, pauli: str) -> np.ndarray:
    """Per-input expectation of a Pauli string.

    ``pauli[0]`` acts on the highest qubit (n-1), matching the bitstring
    convention of :func:`sample_counts`.
    """
    n = _check_states(states)
    if len(pauli) != n:
        raise SimulationError(
            f"Pauli string length {len(pauli)} != {n} qubits"
        )
    if any(ch not in _PAULIS for ch in pauli.upper()):
        raise SimulationError(f"bad Pauli string {pauli!r}")
    if states.ndim == 1:
        states = states.reshape(-1, 1)
    transformed = states.copy()
    # apply each single-qubit Pauli by index manipulation
    for position, ch in enumerate(pauli.upper()):
        qubit = n - 1 - position
        if ch == "I":
            continue
        dim = states.shape[0]
        idx = np.arange(dim)
        bit = (idx >> qubit) & 1
        flipped = idx ^ (1 << qubit)
        if ch == "X":
            transformed = transformed[flipped]
        elif ch == "Z":
            transformed = transformed * np.where(bit, -1.0, 1.0)[:, None]
        else:  # Y: (Y psi)[i] = (+i if bit else -i) * psi[i ^ mask]
            phase = np.where(bit, 1j, -1j)[:, None]
            transformed = transformed[flipped] * phase
    values = np.einsum("ib,ib->b", states.conj(), transformed)
    return values.real


def fidelity(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-input state fidelity ``|<a|b>|^2`` between two output blocks."""
    if a.shape != b.shape:
        raise SimulationError("fidelity needs equal-shaped state blocks")
    if a.ndim == 1:
        a, b = a.reshape(-1, 1), b.reshape(-1, 1)
    overlaps = np.einsum("ib,ib->b", a.conj(), b)
    norms = np.linalg.norm(a, axis=0) * np.linalg.norm(b, axis=0)
    return np.abs(overlaps / norms) ** 2
