"""Tests for the benchmark circuit generators — gate counts must match the
paper's Table 2 exactly at the paper's qubit sizes."""

import numpy as np
import pytest

from repro.circuit.generators import (
    FAMILIES,
    ghz,
    graphstate,
    make_circuit,
    qft,
    random_circuit,
    supremacy,
)
from repro.sim.statevector import simulate_state

#: (family, n) -> #gates from Table 2
PAPER_GATE_COUNTS = {
    ("qnn", 17): 934,
    ("qnn", 19): 1158,
    ("qnn", 21): 1406,
    ("vqe", 12): 58,
    ("vqe", 14): 68,
    ("vqe", 16): 78,
    ("portfolio", 16): 424,
    ("portfolio", 17): 476,
    ("portfolio", 18): 531,
    ("graphstate", 16): 32,
    ("graphstate", 18): 36,
    ("graphstate", 20): 40,
    ("tsp", 9): 94,
    ("tsp", 16): 171,
    ("routing", 6): 39,
    ("routing", 12): 81,
}


@pytest.mark.parametrize("key,expected", sorted(PAPER_GATE_COUNTS.items()))
def test_gate_counts_match_paper(key, expected):
    family, n = key
    assert len(make_circuit(family, n)) == expected


def test_generators_are_deterministic():
    a = make_circuit("vqe", 8, seed=3)
    b = make_circuit("vqe", 8, seed=3)
    assert [(g.name, g.qubits, g.params) for g in a] == [
        (g.name, g.qubits, g.params) for g in b
    ]
    c = make_circuit("vqe", 8, seed=4)
    assert [g.params for g in a] != [g.params for g in c]


def test_unknown_family_raises():
    with pytest.raises(KeyError, match="unknown circuit family"):
        make_circuit("nope", 4)


def test_registry_builds_everything():
    for family in FAMILIES:
        circuit = FAMILIES[family](6)
        assert circuit.num_qubits == 6
        assert len(circuit) > 0


def test_ghz_state():
    state = simulate_state(ghz(4))
    assert state[0] == pytest.approx(2**-0.5)
    assert state[-1] == pytest.approx(2**-0.5)
    assert np.allclose(state[1:-1], 0)


def test_qft_matches_dft_matrix():
    c = qft(4)
    dim = 16
    dft = np.exp(2j * np.pi * np.outer(np.arange(dim), np.arange(dim)) / dim)
    assert np.allclose(c.to_matrix(), dft / np.sqrt(dim), atol=1e-10)


def test_graphstate_structure():
    c = graphstate(10)
    counts = c.counts()
    assert counts == {"h": 10, "cz": 10}


def test_supremacy_alternates_single_qubit_gates():
    c = supremacy(6, depth=6, seed=1)
    # no qubit receives the same single-qubit gate twice in a row
    last = {}
    for g in c.gates:
        if len(g.all_qubits) == 1 and g.name != "h":
            q = g.qubits[0]
            key = (g.name, g.params)
            assert last.get(q) != key
            last[q] = key


def test_random_circuit_length_and_width():
    c = random_circuit(5, 40, seed=0)
    assert len(c) == 40
    assert max(q for g in c for q in g.all_qubits) < 5
