"""Tests for measurement/observable utilities."""

import numpy as np
import pytest

from repro.circuit import (
    fidelity,
    marginal_probability,
    pauli_expectation,
    probabilities,
    sample_counts,
)
from repro.circuit.generators import ghz
from repro.errors import SimulationError
from repro.sim.statevector import simulate_state


@pytest.fixture
def ghz_state():
    return simulate_state(ghz(3))


def normalized_block(rng, n=3, batch=4):
    dim = 1 << n
    states = rng.standard_normal((dim, batch)) + 1j * rng.standard_normal((dim, batch))
    return states / np.linalg.norm(states, axis=0, keepdims=True)


def test_probabilities_sum_to_one(rng):
    p = probabilities(normalized_block(rng))
    assert np.allclose(p.sum(axis=0), 1.0)
    assert (p >= 0).all()


def test_probabilities_rejects_bad_dim():
    with pytest.raises(SimulationError, match="power of two"):
        probabilities(np.ones((6, 2)))


def test_marginal_on_ghz(ghz_state):
    # GHZ: every qubit is 1 with probability 1/2
    for q in range(3):
        assert marginal_probability(ghz_state, q) == pytest.approx(0.5)


def test_marginal_rejects_bad_qubit(ghz_state):
    with pytest.raises(SimulationError, match="out of range"):
        marginal_probability(ghz_state, 5)


def test_sample_counts_ghz(ghz_state):
    counts = sample_counts(ghz_state, shots=2000, rng=0)[0]
    assert set(counts) <= {"000", "111"}
    assert sum(counts.values()) == 2000
    assert abs(counts.get("000", 0) - 1000) < 150


def test_pauli_expectation_matches_dense_operator(rng):
    states = normalized_block(rng)
    paulis = {"I": np.eye(2), "X": np.array([[0, 1], [1, 0]]),
              "Y": np.array([[0, -1j], [1j, 0]]), "Z": np.diag([1, -1])}
    for string in ("ZZZ", "XIY", "IZX", "YXZ"):
        op = np.eye(1)
        for ch in string:
            op = np.kron(op, paulis[ch])
        want = np.einsum("ib,ij,jb->b", states.conj(), op, states).real
        assert np.allclose(pauli_expectation(states, string), want, atol=1e-10)


def test_pauli_expectation_ghz_stabilizers(ghz_state):
    # GHZ stabilizers: XXX = +1, ZZI = +1, IZZ = +1
    assert pauli_expectation(ghz_state, "XXX")[0] == pytest.approx(1.0)
    assert pauli_expectation(ghz_state, "ZZI")[0] == pytest.approx(1.0)
    assert pauli_expectation(ghz_state, "IZZ")[0] == pytest.approx(1.0)
    # single Z has expectation 0 on GHZ
    assert pauli_expectation(ghz_state, "ZII")[0] == pytest.approx(0.0)


def test_pauli_expectation_validation(ghz_state):
    with pytest.raises(SimulationError, match="length"):
        pauli_expectation(ghz_state, "ZZ")
    with pytest.raises(SimulationError, match="bad Pauli"):
        pauli_expectation(ghz_state, "ZQK")


def test_fidelity_bounds(rng):
    a = normalized_block(rng)
    assert np.allclose(fidelity(a, a), 1.0)
    b = normalized_block(rng)
    f = fidelity(a, b)
    assert ((f >= -1e-12) & (f <= 1 + 1e-12)).all()
    with pytest.raises(SimulationError, match="equal-shaped"):
        fidelity(a, a[:4])
