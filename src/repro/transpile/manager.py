"""Pass manager: chain transpile passes with optional per-step verification."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..circuit.circuit import Circuit
from ..errors import CircuitError
from .passes import PASSES

PassFn = Callable[[Circuit], Circuit]


@dataclass
class PassRecord:
    """What one pass did to the circuit."""

    name: str
    gates_before: int
    gates_after: int


@dataclass
class PassManager:
    """Ordered pipeline of passes.

    With ``verify=True`` every pass's output is checked against its input
    via batch simulation on random states (equality up to global phase) —
    the same simulation-driven methodology the paper's testing applications
    use; a non-preserving pass raises :class:`CircuitError` immediately.
    """

    passes: Sequence[str | PassFn] = ()
    verify: bool = False
    verify_inputs: int = 8
    verify_seed: int = 0
    records: list[PassRecord] = field(default_factory=list)

    def _resolve(self, item: str | PassFn) -> tuple[str, PassFn]:
        if callable(item):
            return getattr(item, "__name__", "custom"), item
        try:
            return item, PASSES[item]
        except KeyError:
            raise CircuitError(
                f"unknown pass {item!r}; known: {sorted(PASSES)}"
            ) from None

    def run(self, circuit: Circuit) -> Circuit:
        self.records = []
        current = circuit
        for item in self.passes:
            name, fn = self._resolve(item)
            transformed = fn(current)
            if self.verify and not circuits_equivalent(
                current, transformed, self.verify_inputs, self.verify_seed
            ):
                raise CircuitError(f"pass {name!r} changed the circuit semantics")
            self.records.append(
                PassRecord(name, len(current), len(transformed))
            )
            current = transformed
        return current

    def summary(self) -> str:
        lines = [
            f"{r.name}: {r.gates_before} -> {r.gates_after} gates"
            for r in self.records
        ]
        return "\n".join(lines)


def circuits_equivalent(
    a: Circuit,
    b: Circuit,
    num_inputs: int = 8,
    seed: int = 0,
    atol: float = 1e-8,
) -> bool:
    """Batch-simulative equivalence up to one global phase.

    Simulates both circuits on a shared batch of random inputs; they are
    equivalent iff a single unit phase aligns every output column.
    """
    from ..circuit.inputs import random_batch
    from ..sim.statevector import simulate_batch

    if a.num_qubits != b.num_qubits:
        return False
    batch = random_batch(a.num_qubits, num_inputs, rng=seed)
    out_a = simulate_batch(a, batch)
    out_b = simulate_batch(b, batch)
    # estimate the global phase from the largest amplitude of input 0
    anchor = np.argmax(np.abs(out_a[:, 0]))
    if abs(out_b[anchor, 0]) < 1e-14:
        return False
    phase = out_a[anchor, 0] / out_b[anchor, 0]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(out_a, phase * out_b, atol=atol))


def optimize(circuit: Circuit, verify: bool = False) -> Circuit:
    """The default optimization pipeline."""
    manager = PassManager(
        passes=(
            "remove_identities",
            "commute_diagonals_right",
            "merge_rotations",
            "cancel_inverse_pairs",
            "merge_rotations",
        ),
        verify=verify,
    )
    return manager.run(circuit)
