"""The gateway wire protocol: NDJSON frames, typed errors, codecs.

One request or response per line, each a JSON object carrying the
protocol version.  Requests look like::

    {"v": 1, "op": "submit", "id": 7, "circuit": {...}, ...}

and every response echoes the request ``id`` with either ``"ok": true``
and op-specific fields, or ``"ok": false`` and a typed error::

    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "RETRY_LATER", "message": "...",
               "retry_after_s": 0.05}}

Design rules, enforced here so every entry point shares them:

* **untrusted input never crashes the server** — malformed JSON, a bad
  envelope, an unknown op, oversized payloads, and broken QASM all map
  to :class:`ProtocolError` with a stable :data:`ERROR_CODES` member,
  never a traceback or a hung connection;
* **hard size limits before parsing** — a line, QASM text, circuit, or
  input batch beyond the :data:`MAX_LINE_BYTES` /:data:`MAX_QASM_BYTES`
  /:data:`MAX_QUBITS` /:data:`MAX_GATES` /:data:`MAX_INPUTS` bounds is
  refused with ``OVERSIZED`` (the gate count check runs *after* parsing
  but before any simulation work);
* **bit-exact amplitudes** — complex128 matrices cross the wire as
  base64 of their raw little-endian bytes (:func:`encode_array` /
  :func:`decode_array`), so a batch submitted over TCP reproduces the
  in-process result to the last bit.
"""

from __future__ import annotations

import base64
import json

import numpy as np

from ..circuit import Circuit, InputBatch, parse_qasm, to_qasm
from ..circuit.generators import make_circuit
from ..errors import CircuitError, QasmError, ReproError

#: the one protocol version this build speaks; a request carrying any
#: other version is refused with ``UNSUPPORTED_VERSION``
PROTOCOL_VERSION = 1

#: hard upper bound on one NDJSON frame (requests and responses alike);
#: sized for a 16-qubit x 256-input complex128 batch in base64 plus slack
MAX_LINE_BYTES = 512 * 1024 * 1024 // 8  # 64 MiB
#: QASM source beyond this is refused before the parser ever runs
MAX_QASM_BYTES = 1024 * 1024
#: widest circuit the gateway will admit (the service could go further,
#: but an untrusted 40-qubit submit is a memory bomb, not a job)
MAX_QUBITS = 22
#: deepest circuit the gateway will admit
MAX_GATES = 100_000
#: widest input batch (columns) one submit may carry
MAX_INPUTS = 4096

#: every error code a response may carry — the stable, typed surface
#: clients switch on (messages are for humans, codes are for programs)
ERROR_CODES = frozenset(
    {
        "BAD_ENVELOPE",  # not JSON, not an object, missing v/op
        "UNSUPPORTED_VERSION",
        "UNKNOWN_OP",
        "BAD_CIRCUIT",  # circuit spec invalid (family/qubits/fields)
        "BAD_QASM",  # QASM parse failed (carries "line" when known)
        "BAD_INPUTS",  # input batch malformed or inconsistent
        "OVERSIZED",  # a size limit tripped
        "QUOTA_EXCEEDED",  # tenant token bucket empty
        "RETRY_LATER",  # transient backpressure (carries retry_after_s)
        "DRAINING",  # server is shutting down gracefully
        "UNKNOWN_JOB",
        "JOB_FAILED",  # result requested for a failed/quarantined job
        "NOT_CANCELLABLE",
        "TIMEOUT",  # a bounded wait expired server-side
        "INTERNAL",  # anything else; the message is sanitized
    }
)


class ProtocolError(Exception):
    """A typed wire-protocol refusal.

    Carries a stable ``code`` from :data:`ERROR_CODES` plus optional
    JSON-safe ``extra`` fields (``retry_after_s``, ``line``, ``limit``)
    that land verbatim in the error response.  Raising it anywhere in a
    request handler produces a well-formed error frame, never a
    traceback on the socket.
    """

    def __init__(self, code: str, message: str, **extra) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        self.code = code
        self.extra = extra
        super().__init__(message)

    def to_wire(self) -> dict:
        """The ``error`` object of a refusal response."""
        return {"code": self.code, "message": str(self), **self.extra}


# ---------------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------------

def encode_frame(obj: dict) -> bytes:
    """One NDJSON frame: compact JSON plus the terminating newline."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one request line into its envelope dict.

    Refuses oversized lines, non-JSON, non-object payloads, and bad
    ``v``/``op`` fields with typed errors; returns the parsed dict with
    ``op`` guaranteed to be a string.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "OVERSIZED",
            f"frame is {len(line)} bytes (limit {MAX_LINE_BYTES})",
            limit=MAX_LINE_BYTES,
        )
    try:
        obj = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            "BAD_ENVELOPE", f"frame is not valid JSON: {exc}"
        ) from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            "BAD_ENVELOPE",
            f"frame must be a JSON object, got {type(obj).__name__}",
        )
    version = obj.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "UNSUPPORTED_VERSION",
            f"protocol version {version!r} not supported "
            f"(this server speaks {PROTOCOL_VERSION})",
            supported=PROTOCOL_VERSION,
        )
    op = obj.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("BAD_ENVELOPE", "missing or non-string 'op'")
    return obj


def ok_response(request_id, **fields) -> dict:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, **fields}


def error_response(request_id, error: ProtocolError) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error.to_wire(),
    }


# ---------------------------------------------------------------------------
# array codec (bit-exact complex128 over JSON)
# ---------------------------------------------------------------------------

def encode_array(array: np.ndarray) -> dict:
    """Wire form of a complex128 matrix: shape + base64 raw bytes.

    Little-endian byte order is forced explicitly so the codec is
    platform-independent; decoding reproduces the exact bits.
    """
    data = np.ascontiguousarray(array, dtype="<c16")
    return {
        "dtype": "c16",
        "shape": list(data.shape),
        "b64": base64.b64encode(data.tobytes()).decode("ascii"),
    }


def decode_array(wire: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`, with typed refusals throughout."""
    if not isinstance(wire, dict):
        raise ProtocolError("BAD_INPUTS", "array must be a JSON object")
    if wire.get("dtype") != "c16":
        raise ProtocolError(
            "BAD_INPUTS", f"unsupported array dtype {wire.get('dtype')!r}"
        )
    shape = wire.get("shape")
    if (
        not isinstance(shape, list)
        or not shape
        or not all(isinstance(dim, int) and dim > 0 for dim in shape)
    ):
        raise ProtocolError("BAD_INPUTS", f"bad array shape {shape!r}")
    try:
        raw = base64.b64decode(wire.get("b64", ""), validate=True)
    except (ValueError, TypeError) as exc:
        raise ProtocolError(
            "BAD_INPUTS", f"array payload is not valid base64: {exc}"
        ) from None
    expected = int(np.prod(shape)) * 16
    if len(raw) != expected:
        raise ProtocolError(
            "BAD_INPUTS",
            f"array payload is {len(raw)} bytes, shape {shape} needs "
            f"{expected}",
        )
    return np.frombuffer(raw, dtype="<c16").reshape(shape).astype(
        np.complex128
    )


# ---------------------------------------------------------------------------
# circuit codec
# ---------------------------------------------------------------------------

def circuit_to_wire(circuit: Circuit) -> dict:
    """Wire form of a circuit: its QASM serialization."""
    return {"qasm": to_qasm(circuit)}


def circuit_from_wire(wire) -> Circuit:
    """Build a circuit from an untrusted wire spec.

    Two shapes are accepted: ``{"qasm": "..."}`` (parsed with the typed
    :class:`~repro.errors.QasmError` surfaced as ``BAD_QASM`` carrying
    the offending line) and ``{"family": "ghz", "num_qubits": 4,
    "seed": 0}`` (the benchmark generator registry).  Size limits apply
    before and after parsing.
    """
    if not isinstance(wire, dict):
        raise ProtocolError("BAD_CIRCUIT", "circuit must be a JSON object")
    if "qasm" in wire:
        qasm = wire["qasm"]
        if not isinstance(qasm, str):
            raise ProtocolError("BAD_CIRCUIT", "'qasm' must be a string")
        if len(qasm.encode()) > MAX_QASM_BYTES:
            raise ProtocolError(
                "OVERSIZED",
                f"QASM source exceeds {MAX_QASM_BYTES} bytes",
                limit=MAX_QASM_BYTES,
            )
        try:
            circuit = parse_qasm(qasm)
        except QasmError as exc:
            raise ProtocolError(
                "BAD_QASM", str(exc), line=exc.line
            ) from None
        except CircuitError as exc:
            raise ProtocolError("BAD_QASM", str(exc)) from None
    elif "family" in wire:
        family = wire["family"]
        num_qubits = wire.get("num_qubits")
        seed = wire.get("seed", 0)
        if not isinstance(family, str):
            raise ProtocolError("BAD_CIRCUIT", "'family' must be a string")
        if not isinstance(num_qubits, int) or num_qubits < 1:
            raise ProtocolError(
                "BAD_CIRCUIT",
                f"'num_qubits' must be a positive integer, "
                f"got {num_qubits!r}",
            )
        if num_qubits > MAX_QUBITS:
            raise ProtocolError(
                "OVERSIZED",
                f"{num_qubits} qubits exceeds the gateway limit "
                f"of {MAX_QUBITS}",
                limit=MAX_QUBITS,
            )
        if not isinstance(seed, int):
            raise ProtocolError("BAD_CIRCUIT", "'seed' must be an integer")
        try:
            circuit = make_circuit(family, num_qubits, seed=seed)
        except KeyError as exc:
            raise ProtocolError("BAD_CIRCUIT", str(exc.args[0])) from None
        except CircuitError as exc:
            raise ProtocolError("BAD_CIRCUIT", str(exc)) from None
    else:
        raise ProtocolError(
            "BAD_CIRCUIT", "circuit needs either 'qasm' or 'family'"
        )
    if circuit.num_qubits > MAX_QUBITS:
        raise ProtocolError(
            "OVERSIZED",
            f"circuit is {circuit.num_qubits}-qubit "
            f"(gateway limit {MAX_QUBITS})",
            limit=MAX_QUBITS,
        )
    if circuit.num_gates > MAX_GATES:
        raise ProtocolError(
            "OVERSIZED",
            f"circuit has {circuit.num_gates} gates "
            f"(gateway limit {MAX_GATES})",
            limit=MAX_GATES,
        )
    return circuit


def inputs_from_wire(wire, circuit: Circuit) -> InputBatch | None:
    """Decode a submit's optional ``inputs`` field against its circuit.

    ``None`` (absent) lets the service generate its default seeded batch;
    an array wire object becomes an :class:`InputBatch` validated for
    qubit count and width limits.
    """
    if wire is None:
        return None
    states = decode_array(wire)
    if states.ndim != 2:
        raise ProtocolError(
            "BAD_INPUTS", f"inputs must be 2-D, got {states.ndim}-D"
        )
    rows, columns = states.shape
    if columns > MAX_INPUTS:
        raise ProtocolError(
            "OVERSIZED",
            f"{columns} input columns exceeds the gateway limit "
            f"of {MAX_INPUTS}",
            limit=MAX_INPUTS,
        )
    if rows != 2 ** circuit.num_qubits:
        raise ProtocolError(
            "BAD_INPUTS",
            f"inputs have {rows} rows but the {circuit.num_qubits}-qubit "
            f"circuit needs {2 ** circuit.num_qubits}",
        )
    try:
        return InputBatch(states)
    except (ReproError, ValueError) as exc:
        raise ProtocolError("BAD_INPUTS", str(exc)) from None
