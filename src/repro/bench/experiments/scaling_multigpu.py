"""Extension experiment — multi-GPU batch partitioning (paper Section 4.2).

The paper notes that "the batch of state vectors can be partitioned across
multiple GPUs" because the circuit is optimized once into a reusable task
graph.  This experiment sweeps the device count and reports the simulation
speed-up over one device, which approaches the device count as per-device
pipelines fill.
"""

from __future__ import annotations

from ...circuit.generators import make_circuit
from ...sim import BatchSpec, MultiGpuBQSimSimulator
from ..tables import print_table

SETTINGS = {
    "small": ((("vqe", 8),), (1, 2, 4), 16, 32),
    "medium": ((("vqe", 16), ("qnn", 12)), (1, 2, 4, 8), 200, 256),
    "paper": ((("vqe", 16), ("qnn", 17)), (1, 2, 4, 8), 200, 256),
}


def run(scale: str = "small") -> list[dict]:
    circuits, device_counts, num_batches, batch_size = SETTINGS.get(
        scale, SETTINGS["small"]
    )
    spec = BatchSpec(num_batches=num_batches, batch_size=batch_size)
    rows = []
    for family, n in circuits:
        circuit = make_circuit(family, n)
        base = None
        for devices in device_counts:
            sim = MultiGpuBQSimSimulator(num_devices=devices)
            result = sim.run(circuit, spec, execute=False)
            t_sim = result.breakdown["simulation"]
            if base is None:
                base = t_sim
            rows.append(
                {
                    "family": family,
                    "num_qubits": n,
                    "devices": devices,
                    "sim_s": t_sim,
                    "total_s": result.modeled_time,
                    "speedup": base / t_sim,
                    "efficiency": base / t_sim / devices,
                }
            )
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    print_table(
        f"Multi-GPU scaling: simulation-stage speed-up (scale={scale})",
        ["circuit", "n", "devices", "sim ms", "speed-up", "efficiency"],
        [
            [
                r["family"],
                r["num_qubits"],
                r["devices"],
                f"{r['sim_s'] * 1e3:.1f}",
                f"{r['speedup']:.2f}x",
                f"{r['efficiency'] * 100:.0f}%",
            ]
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
