"""Tests for the variational-algorithm driver."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.statevector import simulate_state
from repro.vqa import (
    Ansatz,
    PauliSum,
    energy_of,
    heisenberg_xxz,
    landscape,
    maxcut,
    run_rotosolve,
    run_vqe,
    transverse_field_ising,
)


@pytest.fixture(scope="module")
def tfim():
    return transverse_field_ising(4, j=1.0, h=0.7)


def test_pauli_sum_validation():
    with pytest.raises(SimulationError, match="length mismatch"):
        PauliSum(2, ("ZZ",), (1.0, 2.0))
    with pytest.raises(SimulationError, match="bad Pauli"):
        PauliSum(2, ("ZQ",), (1.0,))
    with pytest.raises(SimulationError, match="bad Pauli"):
        PauliSum(2, ("ZZZ",), (1.0,))


def test_tfim_structure(tfim):
    assert len(tfim) == 3 + 4  # 3 bonds + 4 fields
    dense = tfim.to_dense()
    assert np.allclose(dense, dense.conj().T)
    # classical limit h=0: ground energy -J (n-1)
    classical = transverse_field_ising(4, j=1.0, h=0.0)
    assert classical.ground_energy() == pytest.approx(-3.0)


def test_expectation_matches_dense(tfim, rng):
    state = rng.standard_normal(16) + 1j * rng.standard_normal(16)
    state /= np.linalg.norm(state)
    want = np.real(state.conj() @ tfim.to_dense() @ state)
    got = tfim.expectation(state.reshape(-1, 1))[0]
    assert got == pytest.approx(want)


def test_heisenberg_and_maxcut_sanity():
    xxz = heisenberg_xxz(3, jxy=1.0, jz=0.5)
    assert len(xxz) == 6
    ring = maxcut([(0, 1), (1, 2), (2, 3), (3, 0)], 4)
    assert ring.ground_energy() == pytest.approx(-4.0)  # cut all 4 edges
    with pytest.raises(SimulationError, match="bad edge"):
        maxcut([(0, 0)], 2)


def test_ansatz_binding():
    ansatz = Ansatz(3, reps=1)
    assert ansatz.num_parameters == 12
    params = ansatz.random_parameters(0)
    circuit = ansatz.bind(params)
    assert circuit.num_qubits == 3
    assert circuit.counts()["cx"] == 2
    with pytest.raises(SimulationError, match="parameters"):
        ansatz.bind(params[:-1])


def test_energy_of_identity_parameters(tfim):
    ansatz = Ansatz(4, reps=2)
    # theta = 0 leaves |0000>, whose TFIM energy is -J * bonds = -3
    energy = energy_of(ansatz, tfim, np.zeros(ansatz.num_parameters))
    assert energy == pytest.approx(-3.0)


def test_rotosolve_reaches_ground_state(tfim):
    ansatz = Ansatz(4, reps=2)
    result = run_rotosolve(
        ansatz, tfim, sweeps=6, initial=np.zeros(ansatz.num_parameters)
    )
    exact = tfim.ground_energy()
    assert result.energy >= exact - 1e-9  # variational bound
    assert result.energy - exact < 0.1
    # monotone non-increasing sweep history
    assert all(a >= b - 1e-9 for a, b in zip(result.history, result.history[1:]))


def test_spsa_improves_energy(tfim):
    ansatz = Ansatz(4, reps=2)
    result = run_vqe(ansatz, tfim, iterations=40, seed=2)
    assert result.improvement() > 0
    assert result.energy >= tfim.ground_energy() - 1e-9
    assert result.evaluations == 1 + 40 * 3


def test_width_mismatch_rejected(tfim):
    with pytest.raises(SimulationError, match="width"):
        run_rotosolve(Ansatz(3), tfim, sweeps=1)
    with pytest.raises(SimulationError, match="width"):
        run_vqe(Ansatz(3), tfim, iterations=1)


def test_landscape_shapes(tfim):
    energies = landscape(Ansatz(4, reps=1), tfim, num_samples=6, seed=0)
    assert energies.shape == (6,)
    assert (energies >= tfim.ground_energy() - 1e-9).all()
