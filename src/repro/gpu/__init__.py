"""Virtual GPU: specs, engines, task graphs, device buffers, power model."""

from .analysis import CriticalPath, critical_path, slack
from .device import DeviceBuffer, VirtualGPU
from .engine import ENGINES, Task, Timeline, schedule
from .graph import TaskGraph, TaskHandle
from .memory import DEFAULT_ALIGNMENT, MemoryPool, PoolBlock
from .power import PowerReport, cpu_power_from_utilization, gpu_power_from_work
from .trace import render_gantt, summarize, to_chrome_trace
from .spec import (
    COMPLEX_BYTES,
    CpuSpec,
    DEFAULT_CPU,
    DEFAULT_GPU,
    GpuSpec,
    dense_kernel_bytes,
    ell_kernel_bytes,
    state_block_bytes,
)

__all__ = [
    "COMPLEX_BYTES",
    "cpu_power_from_utilization",
    "CpuSpec",
    "critical_path",
    "CriticalPath",
    "DEFAULT_ALIGNMENT",
    "DEFAULT_CPU",
    "DEFAULT_GPU",
    "dense_kernel_bytes",
    "DeviceBuffer",
    "ell_kernel_bytes",
    "ENGINES",
    "gpu_power_from_work",
    "GpuSpec",
    "MemoryPool",
    "PoolBlock",
    "PowerReport",
    "render_gantt",
    "schedule",
    "slack",
    "state_block_bytes",
    "summarize",
    "Task",
    "TaskGraph",
    "TaskHandle",
    "Timeline",
    "to_chrome_trace",
    "VirtualGPU",
]
